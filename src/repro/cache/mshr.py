"""Miss Status Holding Registers.

MSHRs bound how many distinct line misses a cache can have in flight
(16 per cache in Table 1) and merge secondary misses to a line that is
already being fetched.  The MSHR limit is what shapes the memory
concurrency the paper measures in Figure 4: a thread can expose at most
``entries`` distinct outstanding lines.
"""

from __future__ import annotations

import enum
from typing import Callable, List

from repro.common.errors import ConfigError


class MSHRStatus(enum.Enum):
    """Result of trying to register a miss."""

    NEW = "new"        # allocated a fresh entry; caller must start the fetch
    MERGED = "merged"  # line already in flight; waiter was registered
    FULL = "full"      # no entry available; caller must retry later


class _Entry:
    __slots__ = ("line_addr", "thread_id", "waiters", "went_to_dram")

    def __init__(self, line_addr: int, thread_id: int) -> None:
        self.line_addr = line_addr
        self.thread_id = thread_id
        self.waiters: List[Callable[[int], None]] = []
        self.went_to_dram = False


class MSHRFile:
    """A fixed-size file of miss entries keyed by line address.

    ``tracer``/``clock`` (a :class:`repro.telemetry.EventTracer` and a
    zero-argument now-callable) turn every allocate / merge / reject
    into a structured trace event; both default to off and cost one
    ``None`` check per registration when disabled.

    ``register`` and ``complete`` are the accounting boundary the
    simulation sanitizer audits (allocate/release balance, occupancy
    vs. capacity, empty-at-drain leak detection); see
    :meth:`repro.analysis.sanitizer.SimSanitizer._watch_mshr`.
    """

    def __init__(self, entries: int = 16, tracer=None, clock=None) -> None:
        if entries < 1:
            raise ConfigError(f"MSHR entries must be >= 1, got {entries}")
        self.entries = entries
        self._by_line: dict[int, _Entry] = {}
        self.merges = 0
        self.rejections = 0
        self.allocations = 0
        self._tracer = tracer if clock is not None else None
        self._clock = clock

    def __len__(self) -> int:
        return len(self._by_line)

    @property
    def available(self) -> int:
        return self.entries - len(self._by_line)

    def pending(self, line_addr: int) -> bool:
        """Whether a fetch for this line is already in flight."""
        return line_addr in self._by_line

    def register(
        self,
        line_addr: int,
        thread_id: int,
        waiter: Callable[[int], None] | None = None,
    ) -> MSHRStatus:
        """Register a miss; merge if the line is already being fetched."""
        entry = self._by_line.get(line_addr)
        if entry is not None:
            if waiter is not None:
                entry.waiters.append(waiter)
            self.merges += 1
            if self._tracer is not None:
                self._trace("mshr.merge", line_addr, thread_id)
            return MSHRStatus.MERGED
        if len(self._by_line) >= self.entries:
            self.rejections += 1
            if self._tracer is not None:
                self._trace("mshr.full", line_addr, thread_id)
            return MSHRStatus.FULL
        entry = _Entry(line_addr, thread_id)
        if waiter is not None:
            entry.waiters.append(waiter)
        self._by_line[line_addr] = entry
        self.allocations += 1
        if self._tracer is not None:
            self._trace("mshr.alloc", line_addr, thread_id)
        return MSHRStatus.NEW

    def _trace(self, name: str, line_addr: int, thread_id: int) -> None:
        self._tracer.emit(
            self._clock(), name, "cache.mshr", thread_id,
            args={"line": line_addr, "occupancy": len(self._by_line)},
        )

    def initiator(self, line_addr: int) -> int:
        """Thread that allocated the entry (owner of the primary miss)."""
        return self._by_line[line_addr].thread_id

    def mark_dram(self, line_addr: int) -> None:
        """Flag that this miss escalated past the L3 to main memory."""
        self._by_line[line_addr].went_to_dram = True

    def went_to_dram(self, line_addr: int) -> bool:
        return self._by_line[line_addr].went_to_dram

    def complete(self, line_addr: int, finish: int) -> list[Callable[[int], None]]:
        """Free the entry and return its waiters (callers invoke them)."""
        entry = self._by_line.pop(line_addr)
        for waiter in entry.waiters:
            waiter(finish)
        return entry.waiters
