"""Hardware prefetcher (Table 1: 4 prefetch MSHR entries per cache).

A tagged stride/next-line prefetcher sitting at the L1D miss stream:
on each demand miss it trains a per-thread stride table (keyed by the
miss line's page) and, when a stable stride is seen, issues prefetches
for the next ``degree`` lines down the stream.  Prefetches use their
own small MSHR quota (Table 1 gives 4 per cache) so they can never
starve demand misses, and are dropped — never queued — when the quota
is exhausted.

Disabled by default (``HierarchyParams(prefetch=False)``): the
workload profiles were calibrated without prefetching, and the paper's
evaluation never isolates the prefetcher.  The
``bench_abl_prefetch.py`` ablation quantifies what it adds: streaming
mixes (swim/lucas) gain, pointer-chasing mixes (mcf) see little.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class StridePrefetcher:
    """Per-thread stride detection over the demand-miss stream.

    ``train()`` is called with every demand-miss line address and
    returns the list of line addresses to prefetch (possibly empty).
    """

    def __init__(
        self,
        degree: int = 2,
        table_entries: int = 64,
        lines_per_page: int = 128,
    ) -> None:
        if degree < 1:
            raise ConfigError(f"degree must be >= 1, got {degree}")
        if table_entries < 1:
            raise ConfigError(f"table_entries must be >= 1, got {table_entries}")
        self.degree = degree
        self.table_entries = table_entries
        self.lines_per_page = lines_per_page
        # (thread, page) -> [last_line, stride, confirmations]
        self._table: dict[tuple[int, int], list[int]] = {}
        self.trainings = 0
        self.prefetches_suggested = 0

    def train(self, thread_id: int, line: int) -> list[int]:
        """Observe a demand miss; return lines to prefetch."""
        self.trainings += 1
        page = line // self.lines_per_page
        key = (thread_id, page)
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # evict an arbitrary (oldest-inserted) entry
                self._table.pop(next(iter(self._table)))
            self._table[key] = [line, 0, 0]
            return []
        last_line, stride, confirmations = entry
        new_stride = line - last_line
        if new_stride == 0:
            return []
        if new_stride == stride:
            confirmations += 1
        else:
            stride = new_stride
            confirmations = 1
        entry[0] = line
        entry[1] = stride
        entry[2] = confirmations
        if confirmations < 2:
            return []
        suggestions = [line + stride * (i + 1) for i in range(self.degree)]
        suggestions = [s for s in suggestions if s >= 0]
        self.prefetches_suggested += len(suggestions)
        return suggestions


class PrefetchQuota:
    """The Table 1 prefetch MSHR file: bounds in-flight prefetches.

    Unlike demand MSHRs, an exhausted quota *drops* the prefetch
    rather than back-pressuring anything.
    """

    def __init__(self, entries: int = 4) -> None:
        if entries < 1:
            raise ConfigError(f"entries must be >= 1, got {entries}")
        self.entries = entries
        self._in_flight: set[int] = set()
        self.issued = 0
        self.dropped = 0

    def try_acquire(self, line: int) -> bool:
        if line in self._in_flight:
            self.dropped += 1
            return False
        if len(self._in_flight) >= self.entries:
            self.dropped += 1
            return False
        self._in_flight.add(line)
        self.issued += 1
        return True

    def release(self, line: int) -> None:
        self._in_flight.discard(line)

    @property
    def in_flight(self) -> int:
        return len(self._in_flight)
