"""CPI breakdown (the paper's Section 4.2 methodology, Figure 1).

Each application runs single-threaded on four systems: the real one,
one with a perfect (infinitely large) L3, one with a perfect L2, and
one with perfect L1 caches.  The CPI differences attribute execution
time to each level of the hierarchy:

* ``CPI_mem  = CPI_overall - CPI_perfectL3``
* ``CPI_L3   = CPI_perfectL3 - CPI_perfectL2``
* ``CPI_L2   = CPI_perfectL2 - CPI_proc``
* ``CPI_proc = CPI_perfectL1``

(The paper's prose lists the same quantities with a typo in the L2/L3
lines; the definitions above are the consistent ones its Figure 1
uses.)  Differences are clamped at zero: with finite measurement
windows a perfect-cache run can come out marginally slower.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpiBreakdown:
    """Per-application CPI decomposition."""

    app: str
    cpi_proc: float
    cpi_l2: float
    cpi_l3: float
    cpi_mem: float

    @property
    def total(self) -> float:
        return self.cpi_proc + self.cpi_l2 + self.cpi_l3 + self.cpi_mem

    def as_row(self) -> tuple[str, float, float, float, float, float]:
        return (
            self.app,
            self.cpi_proc,
            self.cpi_l2,
            self.cpi_l3,
            self.cpi_mem,
            self.total,
        )


def cpi_breakdown(
    app: str,
    cpi_overall: float,
    cpi_perfect_l3: float,
    cpi_perfect_l2: float,
    cpi_perfect_l1: float,
) -> CpiBreakdown:
    """Decompose measured CPIs into proc/L2/L3/mem components."""
    for name, value in (
        ("cpi_overall", cpi_overall),
        ("cpi_perfect_l3", cpi_perfect_l3),
        ("cpi_perfect_l2", cpi_perfect_l2),
        ("cpi_perfect_l1", cpi_perfect_l1),
    ):
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
    return CpiBreakdown(
        app=app,
        cpi_proc=cpi_perfect_l1,
        cpi_l2=max(0.0, cpi_perfect_l2 - cpi_perfect_l1),
        cpi_l3=max(0.0, cpi_perfect_l3 - cpi_perfect_l2),
        cpi_mem=max(0.0, cpi_overall - cpi_perfect_l3),
    )


def cpi_from_metrics(snapshot: dict, thread: int = 0) -> float:
    """CPI of one thread from a telemetry registry snapshot.

    Uses the ``cpu.cycles`` and ``cpu.t{thread}.instructions`` counters
    a run with a live registry publishes, so breakdowns can be computed
    from ``MixResult.metrics`` (or a merged manifest) without keeping
    the full result object around.
    """
    counters = snapshot.get("counters", {})
    cycles = counters.get("cpu.cycles", 0)
    instructions = counters.get(f"cpu.t{thread}.instructions", 0)
    if instructions <= 0:
        raise ValueError(
            f"snapshot has no committed instructions for thread {thread}"
        )
    return cycles / instructions


def cpi_breakdown_from_metrics(
    app: str,
    overall: dict,
    perfect_l3: dict,
    perfect_l2: dict,
    perfect_l1: dict,
    thread: int = 0,
) -> CpiBreakdown:
    """:func:`cpi_breakdown` fed from four registry snapshots."""
    return cpi_breakdown(
        app,
        cpi_overall=cpi_from_metrics(overall, thread),
        cpi_perfect_l3=cpi_from_metrics(perfect_l3, thread),
        cpi_perfect_l2=cpi_from_metrics(perfect_l2, thread),
        cpi_perfect_l1=cpi_from_metrics(perfect_l1, thread),
    )
