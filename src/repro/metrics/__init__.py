"""SMT performance metrics and result post-processing.

* :mod:`repro.metrics.speedup` -- weighted speedup (the paper's
  headline metric, following Tullsen & Brown), harmonic mean of
  relative IPCs (Luo et al.), and raw throughput.
* :mod:`repro.metrics.breakdown` -- the CPI-breakdown methodology of
  Section 4.2 (CPI_proc / CPI_L2 / CPI_L3 / CPI_mem).
* :mod:`repro.metrics.concurrency` -- bucketing helpers for the
  Figure 4/5 concurrency distributions.
"""

from repro.metrics.breakdown import CpiBreakdown, cpi_breakdown
from repro.metrics.fairness import fairness_index, max_slowdown, slowdowns
from repro.metrics.concurrency import (
    OUTSTANDING_BUCKETS,
    bucket_outstanding,
    bucket_thread_counts,
)
from repro.metrics.timeline import (
    aggregate_interval_ipcs,
    burstiness,
    interval_ipcs,
)
from repro.metrics.speedup import (
    harmonic_mean_speedup,
    relative_ipcs,
    throughput,
    weighted_speedup,
)

__all__ = [
    "CpiBreakdown",
    "OUTSTANDING_BUCKETS",
    "bucket_outstanding",
    "bucket_thread_counts",
    "cpi_breakdown",
    "fairness_index",
    "max_slowdown",
    "slowdowns",
    "aggregate_interval_ipcs",
    "burstiness",
    "interval_ipcs",
    "harmonic_mean_speedup",
    "relative_ipcs",
    "throughput",
    "weighted_speedup",
]
