"""Fairness views over per-thread relative performance.

The paper reports weighted speedup; related SMT literature (Luo et
al., cited in Section 4.2) also tracks *fairness* -- whether
co-scheduled threads slow down evenly.  These helpers quantify that
for any run, complementing :mod:`repro.metrics.speedup`.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.speedup import relative_ipcs


def fairness_index(
    multi_ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> float:
    """Min/max ratio of relative IPCs: 1.0 = perfectly even slowdown.

    0.0 when some thread made no progress.
    """
    rel = relative_ipcs(multi_ipcs, single_ipcs)
    peak = max(rel)
    if peak == 0:
        return 0.0
    return min(rel) / peak


def slowdowns(
    multi_ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> list[float]:
    """Per-thread slowdown factors (single / multi); inf if stalled."""
    rel = relative_ipcs(multi_ipcs, single_ipcs)
    return [1.0 / r if r > 0 else float("inf") for r in rel]


def max_slowdown(
    multi_ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> float:
    """Worst per-thread slowdown (the victim thread's penalty)."""
    return max(slowdowns(multi_ipcs, single_ipcs))
