"""Bucketing helpers for the Figure 4/5 concurrency distributions."""

from __future__ import annotations

from typing import Mapping

#: The paper's Figure 4 x-axis groups (outstanding requests while busy).
OUTSTANDING_BUCKETS = (1, 2, 4, 8, 16)


def bucket_outstanding(
    distribution: Mapping[int, float],
    edges: tuple[int, ...] = OUTSTANDING_BUCKETS,
) -> dict[str, float]:
    """Group P(#outstanding = n | busy) into labelled ranges.

    ``distribution`` comes from
    :meth:`repro.dram.stats.DRAMStats.busy_outstanding_distribution`.
    """
    labels = []
    for i, lo in enumerate(edges):
        if i + 1 < len(edges):
            hi = edges[i + 1] - 1
            labels.append(str(lo) if hi == lo else f"{lo}-{hi}")
        else:
            labels.append(f"{lo}+")
    out = {label: 0.0 for label in labels}
    for n, p in distribution.items():
        for i in range(len(edges) - 1, -1, -1):
            if n >= edges[i]:
                out[labels[i]] += p
                break
    return out


def bucket_thread_counts(
    distribution: Mapping[int, float], num_threads: int
) -> dict[str, float]:
    """P(#threads issuing = t | multiple requests), one bin per count."""
    return {
        str(t): distribution.get(t, 0.0) for t in range(1, num_threads + 1)
    }
