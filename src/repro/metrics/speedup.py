"""SMT throughput metrics.

The paper follows Tullsen & Brown and reports *weighted speedup*:

    WS = sum_i  IPC_multi[i] / IPC_single[i]

where ``IPC_single[i]`` is thread *i*'s IPC running alone on the same
machine.  An ideal n-thread SMT would reach WS = n; WS = 1 means the
machine delivers one thread's worth of aggregate progress.  The
harmonic-mean variant (Luo et al.) additionally rewards fairness.
"""

from __future__ import annotations

from typing import Sequence


def relative_ipcs(
    multi_ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> list[float]:
    """Per-thread IPC relative to its single-thread baseline."""
    if len(multi_ipcs) != len(single_ipcs):
        raise ValueError(
            f"length mismatch: {len(multi_ipcs)} multi vs "
            f"{len(single_ipcs)} single IPCs"
        )
    if not multi_ipcs:
        raise ValueError("at least one thread is required")
    rel = []
    for multi, single in zip(multi_ipcs, single_ipcs):
        if single <= 0:
            raise ValueError(f"single-thread IPC must be positive, got {single}")
        rel.append(multi / single)
    return rel


def weighted_speedup(
    multi_ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> float:
    """Tullsen & Brown weighted speedup (sum of relative IPCs)."""
    return sum(relative_ipcs(multi_ipcs, single_ipcs))


def harmonic_mean_speedup(
    multi_ipcs: Sequence[float], single_ipcs: Sequence[float]
) -> float:
    """Harmonic mean of relative IPCs (fairness-sensitive; Luo et al.).

    Returns 0.0 if any thread made no progress.
    """
    rel = relative_ipcs(multi_ipcs, single_ipcs)
    if any(r == 0 for r in rel):
        return 0.0
    return len(rel) / sum(1.0 / r for r in rel)


def throughput(multi_ipcs: Sequence[float]) -> float:
    """Plain aggregate IPC."""
    return sum(multi_ipcs)
