"""Timeline post-processing: interval IPC series from core samples.

Enable sampling with ``CoreParams(sample_interval=N)``; the core then
records ``(cycle, committed-per-thread)`` every ~N cycles in
``SMTCore.timeline``.  These helpers turn the cumulative samples into
per-interval IPC series -- useful for spotting phase behaviour
(clustered misses, scheduler effects over time).
"""

from __future__ import annotations

from typing import Sequence

TimelineSample = tuple[int, tuple[int, ...]]


def dedupe_timeline(
    timeline: Sequence[TimelineSample],
) -> list[TimelineSample]:
    """Merge consecutive samples taken at the same cycle (keep the last).

    The core appends a trailing sample when a run phase ends; on short
    runs that can land on the same cycle as the last periodic sample.
    Same cycle = zero span, so only the most recent committed counts
    matter for interval math.
    """
    deduped: list[TimelineSample] = []
    for sample in timeline:
        if deduped and deduped[-1][0] == sample[0]:
            deduped[-1] = sample
        else:
            deduped.append(sample)
    return deduped


def interval_ipcs(
    timeline: Sequence[TimelineSample],
) -> list[tuple[int, list[float]]]:
    """Per-interval, per-thread IPC between consecutive samples.

    Returns ``[(cycle, [ipc per thread]), ...]`` with one entry per
    distinct-cycle interval.  Consecutive samples at the same cycle are
    merged (last write wins) rather than silently skipped, so a short
    run whose trailing partial-interval sample coincides with a
    periodic one still contributes every committed instruction to some
    interval.
    """
    timeline = dedupe_timeline(timeline)
    series = []
    for (c0, committed0), (c1, committed1) in zip(timeline, timeline[1:]):
        span = c1 - c0
        series.append(
            (c1, [(b - a) / span for a, b in zip(committed0, committed1)])
        )
    return series


def aggregate_interval_ipcs(
    timeline: Sequence[TimelineSample],
) -> list[tuple[int, float]]:
    """Per-interval total IPC (all threads summed)."""
    return [
        (cycle, sum(per_thread))
        for cycle, per_thread in interval_ipcs(timeline)
    ]


def timeline_from_metrics(snapshot: dict) -> list[TimelineSample]:
    """Rebuild a timeline from a telemetry registry snapshot.

    Reads the ``cpu.t{i}.committed`` series a run with a live
    :class:`~repro.telemetry.MetricRegistry` records, so the helpers in
    this module work off ``MixResult.metrics`` even when
    ``sample_interval`` was left at 0 (registry-driven sampling has its
    own default cadence).
    """
    series = snapshot.get("series", {})
    per_thread: list[list[tuple[int, int]]] = []
    for i in range(len(series)):
        samples = series.get(f"cpu.t{i}.committed")
        if samples is None:
            break
        per_thread.append(samples)
    if not per_thread:
        return []
    timeline: list[TimelineSample] = []
    for points in zip(*per_thread):
        cycle = points[0][0]
        timeline.append((cycle, tuple(value for _, value in points)))
    return timeline


def burstiness(timeline: Sequence[TimelineSample]) -> float:
    """Coefficient of variation of the total-IPC series.

    0 = perfectly steady progress; larger = phasier execution.  0.0
    when fewer than two intervals exist.
    """
    values = [ipc for _, ipc in aggregate_interval_ipcs(timeline)]
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return variance**0.5 / mean
