"""Timeline post-processing: interval IPC series from core samples.

Enable sampling with ``CoreParams(sample_interval=N)``; the core then
records ``(cycle, committed-per-thread)`` every ~N cycles in
``SMTCore.timeline``.  These helpers turn the cumulative samples into
per-interval IPC series -- useful for spotting phase behaviour
(clustered misses, scheduler effects over time).
"""

from __future__ import annotations

from typing import Sequence

TimelineSample = tuple[int, tuple[int, ...]]


def interval_ipcs(
    timeline: Sequence[TimelineSample],
) -> list[tuple[int, list[float]]]:
    """Per-interval, per-thread IPC between consecutive samples.

    Returns ``[(cycle, [ipc per thread]), ...]`` with one entry per
    interval (``len(timeline) - 1`` entries).
    """
    series = []
    for (c0, committed0), (c1, committed1) in zip(timeline, timeline[1:]):
        span = c1 - c0
        if span <= 0:
            continue
        series.append(
            (c1, [(b - a) / span for a, b in zip(committed0, committed1)])
        )
    return series


def aggregate_interval_ipcs(
    timeline: Sequence[TimelineSample],
) -> list[tuple[int, float]]:
    """Per-interval total IPC (all threads summed)."""
    return [
        (cycle, sum(per_thread))
        for cycle, per_thread in interval_ipcs(timeline)
    ]


def burstiness(timeline: Sequence[TimelineSample]) -> float:
    """Coefficient of variation of the total-IPC series.

    0 = perfectly steady progress; larger = phasier execution.  0.0
    when fewer than two intervals exist.
    """
    values = [ipc for _, ipc in aggregate_interval_ipcs(timeline)]
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return variance**0.5 / mean
