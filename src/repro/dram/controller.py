"""Per-logical-channel DRAM controller.

Each logical channel owns its banks and data bus and schedules pending
requests with a pluggable :class:`~repro.dram.schedulers.Scheduler`.
The model is request-level but captures the timing structure that the
paper's optimizations exploit:

* state-dependent service latency (hit / closed / conflict) from the
  bank row-buffer state and the page mode;
* bank/bus decoupling: the command phase (precharge + activate +
  column access) of one request overlaps the data burst of another on
  a different bank, so the bus pipelines whenever possible;
* a bounded scheduling horizon: the controller never commits the bus
  more than a couple of bursts ahead, so newly arriving requests can
  still be reordered in front of waiting ones — the property access
  scheduling depends on;
* separate read and write queues with read priority and a
  high/low-watermark write-drain mode, the standard way to let reads
  bypass writes without starving write-backs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.events import EventQueue
from repro.common.types import MemRequest
from repro.dram.bank import Bank, PageMode
from repro.dram.geometry import DRAMGeometry
from repro.dram.schedulers import Scheduler
from repro.dram.stats import DRAMStats
from repro.dram.timing import DRAMTiming
from repro.telemetry.registry import NULL_REGISTRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dram.system import MemorySystem


class ChannelController:
    """Scheduler + bank/bus state for one logical channel."""

    #: Write-queue watermarks for drain mode.
    WRITE_DRAIN_HIGH = 16
    WRITE_DRAIN_LOW = 4

    def __init__(
        self,
        channel_id: int,
        geometry: DRAMGeometry,
        timing: DRAMTiming,
        page_mode: PageMode,
        scheduler: Scheduler,
        event_queue: EventQueue,
        stats: DRAMStats,
        system: "MemorySystem",
        telemetry=None,
    ) -> None:
        self.channel_id = channel_id
        self.timing = timing
        self.page_mode = page_mode
        self.scheduler = scheduler
        self.event_queue = event_queue
        self.stats = stats
        self.system = system
        self._tracer = telemetry.tracer if telemetry is not None else None
        registry = (
            telemetry.registry
            if telemetry is not None and telemetry.registry.enabled
            else NULL_REGISTRY
        )
        prefix = f"dram.ch{channel_id}"
        self._c_row_hits = registry.counter(f"{prefix}.row_hits")
        self._c_row_misses = registry.counter(f"{prefix}.row_misses")
        self._c_reads = registry.counter(f"{prefix}.reads")
        self._c_writes = registry.counter(f"{prefix}.writes")
        # Per-request metric guard: with telemetry off the counters are
        # null singletons, and _issue must not pay even the no-op calls.
        self._counting = registry is not NULL_REGISTRY
        self.banks = [Bank() for _ in range(geometry.banks_per_logical_channel)]
        self.transfer = timing.transfer_for_gang(geometry.gang)
        # Flattened bank-timing fast path: the three state-dependent
        # service latencies and the page-mode branch are resolved once
        # here (from the timing's precomputed per-page-mode table) so
        # the per-request path is plain attribute arithmetic instead of
        # enum/property dispatch through Bank.classify().
        self._open_mode = page_mode is PageMode.OPEN
        lat = timing.service_latency_table(self._open_mode)
        self._lat_hit = lat["hit"]
        self._lat_closed = lat["closed"]
        self._lat_conflict = lat["conflict"]
        self._t_pre = timing.t_pre
        #: How far ahead (cycles) the bus may be committed before the
        #: controller stops issuing and waits; keeps scheduling
        #: reactive.  A tight horizon trades some bank-prep overlap for
        #: a late (well-informed) scheduling decision -- reordering
        #: quality is what the paper's schedulers depend on, so the
        #: window stays small (about one data burst committed ahead).
        self.horizon = 2 * self.transfer
        self.bus_free_at = 0
        self.reads: list[MemRequest] = []
        self.writes: list[MemRequest] = []
        self._draining = False
        self._next_wake: int | None = None

    # ------------------------------------------------------------------
    # scheduler context protocol

    def is_row_hit(self, request: MemRequest) -> bool:
        """Whether ``request`` would hit the row buffer right now.

        Equivalent to ``Bank.classify(...) == "hit"``; schedulers call
        this once per candidate per pump, so it is kept branch-free.
        """
        return (
            self._open_mode
            and self.banks[request.bank].open_row == request.row
        )

    def warm_row(self, bank: int, row: int) -> None:
        """Functional warming: latch ``row`` with no timing or stats.

        Used by the sampled engine's fast-forward path to keep
        row-buffer locality realistic between detailed windows.  No-op
        under the close page policy (banks are always precharged).
        """
        if self._open_mode:
            self.banks[bank].open_row = row

    def outstanding_for_thread(self, thread_id: int) -> int:
        """Live outstanding-request count (for the request-based scheme)."""
        return self.system.outstanding_for_thread(thread_id)

    # ------------------------------------------------------------------
    # queue interface

    @property
    def pending(self) -> int:
        return len(self.reads) + len(self.writes)

    def enqueue(self, request: MemRequest) -> None:
        """Accept a mapped request; called at controller arrival time."""
        if request.is_read:
            self.reads.append(request)
        else:
            self.writes.append(request)
        self.pump()

    # ------------------------------------------------------------------
    # scheduling engine

    def _select_pool(self) -> list[MemRequest]:
        """Pick which queue to serve from, honouring write watermarks."""
        if len(self.writes) >= self.WRITE_DRAIN_HIGH:
            self._draining = True
        elif self._draining and len(self.writes) <= self.WRITE_DRAIN_LOW:
            self._draining = False
        if self.reads and not self._draining:
            return self.reads
        if self.writes:
            return self.writes
        return self.reads

    def pump(self) -> None:
        """Issue as much work as the horizon allows, then sleep.

        The ready list is maintained incrementally across same-cycle
        issues: issuing occupies exactly one bank strictly past ``now``
        (``data_end >= now + transfer > now``) and removes the request
        from its pool, so the recomputed ready set would be the previous
        one minus that bank's requests.  Filtering in place preserves
        pool order, hence scheduler tie-breaks, bit-for-bit; the full
        scan only reruns when ``_select_pool`` switches queues.
        """
        now = self.event_queue.now
        banks = self.banks
        pool: list[MemRequest] | None = None
        ready: list[MemRequest] = []
        while True:
            current = self._select_pool()
            if not current:
                return
            if self.bus_free_at - now > self.horizon:
                # Enough work committed; revisit when the bus drains.
                self._wake_at(self.bus_free_at - self.horizon)
                return
            if current is not pool:
                pool = current
                ready = [r for r in pool if banks[r.bank].free_at <= now]
            if not ready:
                self._wake_at(min(banks[r.bank].free_at for r in pool))
                return
            if self._tracer is not None:
                request, reason = self.scheduler.select_with_reason(
                    ready, now, self
                )
            else:
                request = self.scheduler.select(ready, now, self)
                reason = None
            self._issue(request, now, reason)
            busy = request.bank
            ready = [r for r in ready if r.bank != busy]

    def _issue(
        self, request: MemRequest, now: int, reason: str | None = None
    ) -> None:
        bank = self.banks[request.bank]
        # Inlined Bank.service_latency + Bank.serve (see __init__'s
        # flattened timing): same classification, same state updates.
        row = request.row
        if self._open_mode:
            open_row = bank.open_row
            if open_row == row:
                hit = True
                latency = self._lat_hit
            elif open_row is None:
                hit = False
                latency = self._lat_closed
            else:
                hit = False
                latency = self._lat_conflict
        else:
            hit = False
            latency = self._lat_closed
        data_start = max(now + latency, self.bus_free_at)
        data_end = data_start + self.transfer
        bank.services += 1
        if hit:
            bank.row_hits += 1
        if self._open_mode:
            bank.open_row = row
            bank.free_at = data_end
        else:
            bank.open_row = None
            bank.free_at = data_end + self._t_pre
        self.bus_free_at = data_end
        (self.reads if request.is_read else self.writes).remove(request)
        request.issue_time = now
        request.row_hit = hit
        request.finish_time = (
            data_end + self.timing.ctrl_response if request.is_read else data_end
        )
        self.stats.record_service(request.is_read, hit, request.thread_id)
        if self._counting:
            (self._c_row_hits if hit else self._c_row_misses).add()
            (self._c_reads if request.is_read else self._c_writes).add()
        if self._tracer is not None:
            tracer = self._tracer
            tracer.emit(
                now, "dram.pick", "dram.sched", request.thread_id,
                args={
                    "reason": reason,
                    "scheduler": self.scheduler.name,
                    "channel": self.channel_id,
                    "bank": request.bank,
                    "row": request.row,
                    "hit": hit,
                    "op": "read" if request.is_read else "write",
                },
            )
            tracer.emit(
                data_start, "dram.burst", "dram.bus", request.thread_id,
                dur=self.transfer,
                args={"channel": self.channel_id, "bank": request.bank},
            )
        if request.is_read:
            queue_delay = max(0, now - (request.arrival + self.timing.ctrl_request))
            self.stats.record_read_latency(
                request.finish_time - request.arrival,
                queue_delay,
                request.thread_id,
            )
        self.event_queue.schedule(
            request.finish_time, self.system.complete, request
        )

    def _wake_at(self, time: int) -> None:
        now = self.event_queue.now
        time = max(time, now + 1)
        if self._next_wake is not None and self._next_wake <= time:
            return
        self._next_wake = time
        self.event_queue.schedule(time, self._on_wake, time)

    def _on_wake(self, scheduled_for: int) -> None:
        if self._next_wake == scheduled_for:
            self._next_wake = None
        self.pump()
