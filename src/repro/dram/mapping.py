"""Address mapping schemes: line address -> (channel, bank, row).

Section 5.4 of the paper compares two mappings:

* **page** -- page interleaving: consecutive DRAM pages are assigned to
  logical channels and then to banks round-robin, so sequential
  streams spread across channels/banks while staying inside a page for
  ``lines_per_page`` consecutive lines.
* **XOR** -- the permutation-based scheme of Zhang, Zhu & Zhang
  (MICRO 2000): the bank index is XOR-ed with low-order row bits so
  that accesses which conflict on a bank under the page scheme are
  spread over different banks, reducing row-buffer conflicts.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.common.errors import ConfigError
from repro.dram.geometry import DRAMGeometry


class MappedAddress(NamedTuple):
    """Location of one cache line inside the memory system."""

    channel: int
    bank: int
    row: int


class AddressMapping:
    """Base class: decompose a line address into channel/bank/row.

    Subclasses override :meth:`_permute_bank`.  The base decomposition
    is page interleaving:

    ``line -> page = line // lines_per_page``;
    ``channel = page mod C``; ``bank = (page // C) mod B``;
    ``row = (page // (C*B)) mod rows``.
    """

    name = "base"

    def __init__(self, geometry: DRAMGeometry) -> None:
        self.geometry = geometry
        self._channels = geometry.logical_channels
        self._banks = geometry.banks_per_logical_channel
        self._lines_per_page = geometry.lines_per_page
        self._rows = geometry.rows_per_bank
        if self._lines_per_page < 1:
            raise ConfigError("page must hold at least one line")

    def map_line(self, line_addr: int) -> MappedAddress:
        """Map a cache-line address to its DRAM location."""
        page = line_addr // self._lines_per_page
        channel = page % self._channels
        rest = page // self._channels
        bank = rest % self._banks
        row = (rest // self._banks) % self._rows
        return MappedAddress(channel, self._permute_bank(bank, row, page), row)

    def _permute_bank(self, bank: int, row: int, page: int) -> int:
        raise NotImplementedError


class PageInterleaveMapping(AddressMapping):
    """Round-robin page interleaving (the paper's "page" scheme)."""

    name = "page"

    def _permute_bank(self, bank: int, row: int, page: int) -> int:
        return bank


class XorPageMapping(AddressMapping):
    """Permutation-based interleaving (the paper's "XOR" scheme).

    XORs the bank index with the low ``log2(banks)`` bits of the row
    index -- a stand-in for the cache-set-index bits the hardware
    scheme uses.  This is a bijection for any fixed row, so capacity
    and bank balance are preserved.
    """

    name = "xor"

    def _permute_bank(self, bank: int, row: int, page: int) -> int:
        return bank ^ (row & (self._banks - 1))


class ColorXorMapping(AddressMapping):
    """XOR mapping extended with thread-color bits (an extension).

    Section 5.4 observes that the XOR scheme is less effective under
    SMT because row-buffer conflicts now come from *multiple threads*,
    and suggests mapping research that considers them.  This mapping
    folds the high address bits -- which distinguish the per-thread
    address spaces under the bin-hopping allocation -- into the bank
    permutation, so equal-offset accesses of different threads land on
    different banks instead of colliding.

    Not part of the paper's evaluation; used by the ablation benches.
    """

    name = "color-xor"

    #: High address bits folded in (2^28 lines = the per-thread
    #: address-space stride of the workload generator).
    COLOR_SHIFT = 23

    def _permute_bank(self, bank: int, row: int, page: int) -> int:
        mask = self._banks - 1
        color = (page >> self.COLOR_SHIFT) & mask
        return bank ^ (row & mask) ^ color


_MAPPINGS = {
    "page": PageInterleaveMapping,
    "xor": XorPageMapping,
    "color-xor": ColorXorMapping,
}


def make_mapping(name: str, geometry: DRAMGeometry) -> AddressMapping:
    """Construct a mapping scheme by name (``"page"`` or ``"xor"``)."""
    try:
        cls = _MAPPINGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown mapping {name!r}; available: {sorted(_MAPPINGS)}"
        ) from None
    return cls(geometry)
