"""DRAM timing parameters, expressed in CPU cycles.

Everything in the simulator runs in CPU cycles at the paper's 3 GHz
(Table 1), so DRAM-side nanosecond timings are converted once here:

* 15 ns row access      -> 45 cycles
* 15 ns column access   -> 45 cycles
* 15 ns precharge       -> 45 cycles

Channel data rates (Table 1 / Section 5.4):

* DDR SDRAM channel: 200 MHz, double data rate, 16 B wide
  -> 32 B per 5 ns bus clock -> a 64 B line takes 10 ns = 30 cycles.
* Direct Rambus channel: 2 B wide at 800 MT/s -> 1.6 GB/s
  -> a 64 B line takes 40 ns = 120 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: CPU clock frequency used for all conversions (Table 1).
CPU_FREQ_GHZ = 3.0


def ns_to_cycles(ns: float, cpu_freq_ghz: float = CPU_FREQ_GHZ) -> int:
    """Convert nanoseconds to (rounded) CPU cycles."""
    return round(ns * cpu_freq_ghz)


@dataclass(frozen=True)
class DRAMTiming:
    """Timing of one physical DRAM channel, in CPU cycles.

    Attributes
    ----------
    t_row:
        Row access (activate) time.
    t_col:
        Column access (CAS) time.
    t_pre:
        Precharge time.
    transfer:
        Bus occupancy to move one cache line over a single physical
        channel.  Ganging ``g`` channels divides this by ``g``.
    ctrl_request:
        Fixed controller/interconnect latency from the processor to the
        controller queue (address decode, queue insertion).
    ctrl_response:
        Fixed latency from the end of the data burst back to the
        processor (return path, fill forwarding).
    t_ras:
        Minimum ACTIVATE-to-PRECHARGE time (command-level model only).
    t_rrd:
        Minimum ACTIVATE-to-ACTIVATE gap between different banks of one
        channel (command-level model only).
    t_cmd:
        Command-bus occupancy of one DRAM command -- one DRAM clock
        (command-level model only).
    t_turnaround:
        Data-bus idle cycles when switching between read and write
        bursts (command-level model only).
    t_refi:
        Average refresh interval per channel (command-level model
        only; 7.8 us at 3 GHz).  0 disables refresh.
    t_rfc:
        Refresh cycle time -- all banks unavailable while it runs
        (command-level model only).
    """

    t_row: int = 45
    t_col: int = 45
    t_pre: int = 45
    transfer: int = 30
    ctrl_request: int = 20
    ctrl_response: int = 20
    t_ras: int = 120
    t_rrd: int = 30
    t_cmd: int = 15
    t_turnaround: int = 12
    t_refi: int = 23400
    t_rfc: int = 210
    #: Per-page-mode service-latency tables, precomputed once at
    #: construction: ``_service_latency[open_mode][kind]`` where
    #: ``open_mode`` keys the open (True) / close (False) page policy
    #: and ``kind`` is a :meth:`~repro.dram.bank.Bank.classify` result
    #: ("hit" / "closed" / "conflict").  Under the close policy every
    #: access is served as "closed" (row + column), so all three kinds
    #: collapse to the same latency.  Derived entirely from the timing
    #: fields above, so equality/hash semantics are unchanged.
    _service_latency: dict[bool, dict[str, int]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        for name in ("t_row", "t_col", "t_pre", "transfer"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")
        for name in ("ctrl_request", "ctrl_response", "t_ras", "t_rrd",
                     "t_cmd", "t_turnaround", "t_refi", "t_rfc"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0, got {getattr(self, name)}")
        closed = self.t_row + self.t_col
        object.__setattr__(
            self,
            "_service_latency",
            {
                True: {
                    "hit": self.t_col,
                    "closed": closed,
                    "conflict": self.t_pre + closed,
                },
                False: {"hit": closed, "closed": closed, "conflict": closed},
            },
        )

    def service_latency_table(self, open_mode: bool) -> dict[str, int]:
        """Precomputed classification -> service-latency table.

        ``open_mode`` is ``page_mode is PageMode.OPEN``; controllers
        resolve the page-mode branch once at construction and index
        this table per request instead of re-deriving the latency from
        the timing properties.
        """
        return self._service_latency[open_mode]

    def transfer_for_gang(self, gang: int) -> int:
        """Line transfer time over ``gang`` lock-stepped physical channels."""
        if gang < 1:
            raise ConfigError(f"gang must be >= 1, got {gang}")
        return max(1, self.transfer // gang)

    @property
    def hit_latency(self) -> int:
        """Service latency (pre-bus) of a row-buffer hit."""
        return self.t_col

    @property
    def closed_latency(self) -> int:
        """Service latency of an access to a precharged (closed) bank."""
        return self.t_row + self.t_col

    @property
    def conflict_latency(self) -> int:
        """Service latency of a row-buffer conflict (open, wrong row)."""
        return self.t_pre + self.t_row + self.t_col


def ddr_timing() -> DRAMTiming:
    """Timing of one DDR SDRAM channel per Table 1 (200 MHz DDR, 16 B)."""
    return DRAMTiming(
        t_row=ns_to_cycles(15),
        t_col=ns_to_cycles(15),
        t_pre=ns_to_cycles(15),
        transfer=ns_to_cycles(10),  # 64 B line / (2 x 200 MHz x 16 B)
        t_ras=ns_to_cycles(40),
        t_rrd=ns_to_cycles(10),
        t_cmd=ns_to_cycles(5),      # one 200 MHz command slot
        t_turnaround=ns_to_cycles(4),
    )


def rdram_timing() -> DRAMTiming:
    """Timing of one Direct Rambus channel (2 B wide, 800 MT/s)."""
    return DRAMTiming(
        t_row=ns_to_cycles(15),
        t_col=ns_to_cycles(15),
        t_pre=ns_to_cycles(15),
        transfer=ns_to_cycles(40),  # 64 B line / 1.6 GB/s
        t_ras=ns_to_cycles(40),
        t_rrd=ns_to_cycles(10),
        t_cmd=ns_to_cycles(2.5),    # packetized command channel
        t_turnaround=ns_to_cycles(4),
    )
