"""Multi-channel DRAM memory-system model.

Implements the event-driven DRAM simulator of the paper's Section 4:
multi-channel DDR SDRAM and Direct Rambus DRAM systems with

* per-bank row-buffer state and open/close page modes,
* channel ganging (``xC-yG`` organizations of Section 5.3),
* page-interleaved and XOR/permutation-based address mappings
  (Section 5.4),
* pluggable access schedulers including the paper's three thread-aware
  schemes (Sections 3 and 5.5), and
* the time-weighted concurrency statistics behind Figures 4 and 5.
"""

from repro.dram.bank import Bank, PageMode
from repro.dram.command_controller import Command, CommandChannelController
from repro.dram.controller import ChannelController
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import (
    AddressMapping,
    ColorXorMapping,
    MappedAddress,
    PageInterleaveMapping,
    XorPageMapping,
    make_mapping,
)
from repro.dram.schedulers import (
    AgeBasedScheduler,
    CriticalFirstScheduler,
    FcfsScheduler,
    HitFirstScheduler,
    IqBasedScheduler,
    ReadFirstScheduler,
    RequestBasedScheduler,
    RobBasedScheduler,
    Scheduler,
    make_scheduler,
    scheduler_names,
)
from repro.dram.stats import DRAMStats
from repro.dram.system import MemorySystem
from repro.dram.timing import DRAMTiming, ddr_timing, rdram_timing

__all__ = [
    "AddressMapping",
    "AgeBasedScheduler",
    "Bank",
    "ColorXorMapping",
    "Command",
    "CommandChannelController",
    "CriticalFirstScheduler",
    "ChannelController",
    "DRAMGeometry",
    "DRAMStats",
    "DRAMTiming",
    "FcfsScheduler",
    "HitFirstScheduler",
    "IqBasedScheduler",
    "MappedAddress",
    "MemorySystem",
    "PageInterleaveMapping",
    "PageMode",
    "ReadFirstScheduler",
    "RequestBasedScheduler",
    "RobBasedScheduler",
    "Scheduler",
    "XorPageMapping",
    "ddr_timing",
    "make_mapping",
    "make_scheduler",
    "rdram_timing",
    "scheduler_names",
]
