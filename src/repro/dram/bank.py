"""Per-bank row-buffer state and the open/close page modes.

A bank is a two-dimensional cell array fronted by a row buffer (sense
amplifiers).  An access needs (Section 2 of the paper):

* a **column access** only, if the requested row is already in the row
  buffer (row-buffer *hit*);
* a **row access + column access**, if the bank is precharged (row
  buffer *empty*);
* a **precharge + row access + column access**, if another row is open
  (row-buffer *conflict*).

Under the **open** page mode the row is kept in the buffer after the
access, betting on locality; under the **close** page mode the bank is
precharged immediately after the column access, so every access costs
``row + column`` but never pays the precharge on the critical path.
"""

from __future__ import annotations

import enum

from repro.dram.timing import DRAMTiming


class PageMode(enum.Enum):
    """Row-buffer management policy (Section 2)."""

    OPEN = "open"
    CLOSE = "close"


class Bank:
    """State of a single independent DRAM bank.

    ``open_row`` is the row currently latched in the row buffer
    (``None`` when precharged); ``free_at`` is the cycle at which the
    bank can accept its next command.
    """

    __slots__ = ("open_row", "free_at", "services", "row_hits")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.free_at = 0
        self.services = 0
        self.row_hits = 0

    def classify(self, row: int, page_mode: PageMode) -> str:
        """How an access to ``row`` would be served: hit/closed/conflict."""
        if page_mode is PageMode.CLOSE or self.open_row is None:
            return "closed"
        if self.open_row == row:
            return "hit"
        return "conflict"

    def service_latency(self, row: int, page_mode: PageMode, timing: DRAMTiming) -> int:
        """Command latency (before the data burst) to access ``row``."""
        table = timing.service_latency_table(page_mode is PageMode.OPEN)
        return table[self.classify(row, page_mode)]

    def serve(
        self,
        row: int,
        start: int,
        data_end: int,
        page_mode: PageMode,
        timing: DRAMTiming,
    ) -> bool:
        """Commit an access to ``row`` occupying the bank until it completes.

        ``start`` is when the bank begins the command sequence,
        ``data_end`` when the data burst finishes on the bus.  Returns
        whether the access was a row-buffer hit.

        Under the close page mode the bank additionally pays the
        precharge after the burst before it is free again, and the row
        buffer is left empty.
        """
        hit = self.classify(row, page_mode) == "hit"
        self.services += 1
        if hit:
            self.row_hits += 1
        if page_mode is PageMode.OPEN:
            self.open_row = row
            self.free_at = data_end
        else:
            self.open_row = None
            self.free_at = data_end + timing.t_pre
        return hit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bank(open_row={self.open_row}, free_at={self.free_at})"
