"""Command-level DRAM channel controller.

An alternative to the request-level
:class:`~repro.dram.controller.ChannelController` that models the
individual DRAM operations the paper's Section 2 describes — PRECHARGE,
ACTIVATE (row access), READ/WRITE (column access) — with the full
bank-state machine and inter-command constraints:

* ``tRCD``  ACTIVATE -> column command to the same bank,
* ``tCAS``  column command -> first data beat,
* ``tRP``   PRECHARGE -> ACTIVATE,
* ``tRAS``  minimum ACTIVATE -> PRECHARGE,
* ``tRRD``  ACTIVATE -> ACTIVATE across banks of one channel,
* one command per DRAM clock on the shared command bus,
* data-bus turnaround when the burst direction flips,
* periodic all-bank refresh (``tREFI``/``tRFC``).

Scheduling remains *request-first*: the configured scheduler picks
which pending request to advance, and the controller issues that
request's next required command (FR-FCFS behaviour emerges from the
hit-first scheduler).  Commands from different requests naturally
interleave: one bank's ACTIVATE proceeds under another's data burst.

Select with ``SystemConfig(controller_model="command")`` or
``MemorySystem(..., controller_model="command")``.  The request-level
model is the default — it is several times faster and calibrated
against the paper's shapes; this model is for fidelity-sensitive
studies (command-bus contention, tRAS-limited banks).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.common.events import EventQueue
from repro.common.types import MemRequest
from repro.dram.bank import PageMode
from repro.dram.geometry import DRAMGeometry
from repro.dram.schedulers import Scheduler
from repro.dram.stats import DRAMStats
from repro.dram.timing import DRAMTiming
from repro.telemetry.registry import NULL_REGISTRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dram.system import MemorySystem


class Command(enum.Enum):
    """DRAM operations (Section 2 of the paper)."""

    PRECHARGE = "precharge"
    ACTIVATE = "activate"
    READ = "read"
    WRITE = "write"


class _BankState:
    """Full bank state machine for the command-level model."""

    __slots__ = ("open_row", "ready_at", "activated_at", "burst_done_at")

    def __init__(self) -> None:
        self.open_row: int | None = None
        #: When the next command to this bank may start.
        self.ready_at = 0
        #: Time of the last ACTIVATE (for the tRAS constraint).
        self.activated_at = -(10**9)
        #: When the bank's last column burst finishes (a PRECHARGE must
        #: not cut off in-flight data).
        self.burst_done_at = 0


class CommandChannelController:
    """Command-level scheduler/state machine for one logical channel.

    Drop-in replacement for
    :class:`~repro.dram.controller.ChannelController`: same queue
    interface (``enqueue``/``pump``), same scheduler-context protocol,
    same statistics hooks.
    """

    WRITE_DRAIN_HIGH = 16
    WRITE_DRAIN_LOW = 4

    def __init__(
        self,
        channel_id: int,
        geometry: DRAMGeometry,
        timing: DRAMTiming,
        page_mode: PageMode,
        scheduler: Scheduler,
        event_queue: EventQueue,
        stats: DRAMStats,
        system: "MemorySystem",
        telemetry=None,
    ) -> None:
        self.channel_id = channel_id
        self.timing = timing
        self.page_mode = page_mode
        self.scheduler = scheduler
        self.event_queue = event_queue
        self.stats = stats
        self.system = system
        self._tracer = telemetry.tracer if telemetry is not None else None
        registry = (
            telemetry.registry
            if telemetry is not None and telemetry.registry.enabled
            else NULL_REGISTRY
        )
        prefix = f"dram.ch{channel_id}"
        self._c_row_hits = registry.counter(f"{prefix}.row_hits")
        self._c_row_misses = registry.counter(f"{prefix}.row_misses")
        self._c_reads = registry.counter(f"{prefix}.reads")
        self._c_writes = registry.counter(f"{prefix}.writes")
        self._c_commands = {
            c: registry.counter(f"{prefix}.cmd.{c.value}") for c in Command
        }
        # Per-command metric guard: with telemetry off the counters are
        # null singletons, and the hot path must not pay the no-op calls.
        self._counting = registry is not NULL_REGISTRY
        self.banks = [
            _BankState() for _ in range(geometry.banks_per_logical_channel)
        ]
        self.transfer = timing.transfer_for_gang(geometry.gang)
        #: Column commands are held back while the data bus is already
        #: committed this far ahead, keeping scheduling decisions late
        #: and well-informed (same rationale as the request-level
        #: controller's horizon).
        self.horizon = 2 * self.transfer
        self.bus_free_at = 0
        self.cmd_free_at = 0
        self.last_activate_at = -(10**9)
        #: Direction of the last data burst ("r"/"w"/None) for
        #: turnaround accounting.
        self.last_burst: str | None = None
        self.reads: list[MemRequest] = []
        self.writes: list[MemRequest] = []
        self._draining = False
        self._next_wake: int | None = None
        self.commands_issued: dict[Command, int] = {c: 0 for c in Command}
        self.refreshes = 0
        self._next_refresh_at = timing.t_refi if timing.t_refi else None
        #: Requests that already received a PRECHARGE/ACTIVATE from us;
        #: a column command to a request not in this set found its row
        #: already open -- a row-buffer hit.
        self._prepared: set[int] = set()

    # ------------------------------------------------------------------
    # scheduler context protocol

    def is_row_hit(self, request: MemRequest) -> bool:
        return self.banks[request.bank].open_row == request.row

    def warm_row(self, bank: int, row: int) -> None:
        """Functional warming of the row buffer (sampled fast-forward).

        Mirrors :meth:`ChannelController.warm_row`: state only, no
        timing/stats; no-op under the close page policy.
        """
        if self.page_mode is PageMode.OPEN:
            self.banks[bank].open_row = row

    def outstanding_for_thread(self, thread_id: int) -> int:
        return self.system.outstanding_for_thread(thread_id)

    # ------------------------------------------------------------------
    # queue interface

    @property
    def pending(self) -> int:
        return len(self.reads) + len(self.writes)

    def enqueue(self, request: MemRequest) -> None:
        if request.is_read:
            self.reads.append(request)
        else:
            self.writes.append(request)
        self.pump()

    # ------------------------------------------------------------------
    # command legality

    def _next_command(self, request: MemRequest) -> Command:
        """The command this request needs next, given its bank state."""
        bank = self.banks[request.bank]
        if bank.open_row == request.row:
            return Command.READ if request.is_read else Command.WRITE
        if bank.open_row is None:
            return Command.ACTIVATE
        return Command.PRECHARGE

    def _earliest_issue(self, request: MemRequest, command: Command) -> int:
        """Earliest time the command could legally go on the buses."""
        bank = self.banks[request.bank]
        earliest = max(bank.ready_at, self.cmd_free_at)
        if command is Command.ACTIVATE:
            earliest = max(earliest, self.last_activate_at + self.timing.t_rrd)
        elif command is Command.PRECHARGE:
            earliest = max(
                earliest,
                bank.activated_at + self.timing.t_ras,
                bank.burst_done_at,
            )
        else:  # READ / WRITE: respect the bus-commitment horizon
            earliest = max(earliest, self.bus_free_at - self.horizon)
        return earliest

    # ------------------------------------------------------------------
    # scheduling engine

    def _select_pool(self) -> list[MemRequest]:
        if len(self.writes) >= self.WRITE_DRAIN_HIGH:
            self._draining = True
        elif self._draining and len(self.writes) <= self.WRITE_DRAIN_LOW:
            self._draining = False
        if self.reads and not self._draining:
            return self.reads
        if self.writes:
            return self.writes
        return self.reads

    def _maybe_refresh(self, now: int) -> None:
        """All-bank refresh: rows close, banks stall for tRFC."""
        if self._next_refresh_at is None or now < self._next_refresh_at:
            return
        done = now + self.timing.t_rfc
        for bank in self.banks:
            bank.open_row = None
            bank.ready_at = max(bank.ready_at, done)
        self.refreshes += 1
        self._next_refresh_at += self.timing.t_refi

    def pump(self) -> None:
        """Issue legal commands now; sleep until the next one is legal.

        The legality scan inlines ``_next_command`` +
        ``_earliest_issue`` with the channel-wide bounds (command bus,
        tRRD window, data-bus horizon) hoisted out of the per-request
        loop; they only change through ``_issue``, so one read per scan
        is exact.  Same comparisons, same ``max`` semantics, bit-for-bit
        identical issue order.
        """
        banks = self.banks
        t_rrd = self.timing.t_rrd
        t_ras = self.timing.t_ras
        while True:
            now = self.event_queue.now
            self._maybe_refresh(now)
            pool = self._select_pool()
            if not pool:
                return
            cmd_free = self.cmd_free_at
            act_ok = self.last_activate_at + t_rrd
            col_floor = self.bus_free_at - self.horizon
            ready = []
            earliest_future = None
            for request in pool:
                bank = banks[request.bank]
                open_row = bank.open_row
                at = bank.ready_at
                if at < cmd_free:
                    at = cmd_free
                if open_row == request.row:  # column command next
                    if at < col_floor:
                        at = col_floor
                elif open_row is None:  # ACTIVATE next
                    if at < act_ok:
                        at = act_ok
                else:  # PRECHARGE next
                    if at < bank.activated_at + t_ras:
                        at = bank.activated_at + t_ras
                    if at < bank.burst_done_at:
                        at = bank.burst_done_at
                if at <= now:
                    ready.append(request)
                elif earliest_future is None or at < earliest_future:
                    earliest_future = at
            if not ready:
                if earliest_future is not None:
                    self._wake_at(earliest_future)
                return
            if self._tracer is not None:
                request, reason = self.scheduler.select_with_reason(
                    ready, now, self
                )
            else:
                request = self.scheduler.select(ready, now, self)
                reason = None
            self._issue(request, self._next_command(request), now, reason)

    def _trace_command(
        self,
        name: str,
        request: MemRequest,
        now: int,
        dur: int,
        reason: str | None,
    ) -> None:
        args = {
            "channel": self.channel_id,
            "bank": request.bank,
            "row": request.row,
            "req": request.req_id,
        }
        if reason is not None:
            args["reason"] = reason
            args["scheduler"] = self.scheduler.name
        self._tracer.emit(
            now, name, "dram.cmd", request.thread_id, dur=dur, args=args
        )

    def _issue(
        self,
        request: MemRequest,
        command: Command,
        now: int,
        reason: str | None = None,
    ) -> None:
        bank = self.banks[request.bank]
        timing = self.timing
        self.cmd_free_at = now + timing.t_cmd
        self.commands_issued[command] += 1
        if self._counting:
            self._c_commands[command].add()
        if request.issue_time < 0:
            request.issue_time = now
        if command is Command.PRECHARGE:
            self._prepared.add(request.req_id)
            bank.open_row = None
            bank.ready_at = now + timing.t_pre
            if self._tracer is not None:
                self._trace_command("dram.PRE", request, now, timing.t_pre, reason)
            return
        if command is Command.ACTIVATE:
            self._prepared.add(request.req_id)
            bank.open_row = request.row
            bank.ready_at = now + timing.t_row  # tRCD
            bank.activated_at = now
            self.last_activate_at = now
            if self._tracer is not None:
                self._trace_command("dram.ACT", request, now, timing.t_row, reason)
            return
        # READ / WRITE: schedule the data burst.
        direction = "r" if command is Command.READ else "w"
        bus_available = self.bus_free_at
        if self.last_burst is not None and self.last_burst != direction:
            bus_available += timing.t_turnaround
        data_start = max(now + timing.t_col, bus_available)
        data_end = data_start + self.transfer
        self.bus_free_at = data_end
        self.last_burst = direction
        bank.burst_done_at = data_end
        # Hit iff the row was already open before any command of ours:
        # requests that needed their own PRECHARGE/ACTIVATE are misses.
        hit = request.row_hit = request.req_id not in self._prepared
        self._prepared.discard(request.req_id)
        if self.page_mode is PageMode.OPEN:
            bank.ready_at = data_end
        else:
            # auto-precharge after the burst
            bank.open_row = None
            bank.ready_at = data_end + timing.t_pre
        (self.reads if request.is_read else self.writes).remove(request)
        request.finish_time = (
            data_end + timing.ctrl_response if request.is_read else data_end
        )
        self.stats.record_service(request.is_read, hit, request.thread_id)
        if self._counting:
            (self._c_row_hits if hit else self._c_row_misses).add()
            (self._c_reads if request.is_read else self._c_writes).add()
        if self._tracer is not None:
            name = "dram.CAS.read" if request.is_read else "dram.CAS.write"
            self._trace_command(name, request, now, timing.t_col, reason)
            self._tracer.emit(
                data_start, "dram.burst", "dram.bus", request.thread_id,
                dur=self.transfer,
                args={
                    "channel": self.channel_id,
                    "bank": request.bank,
                    "hit": hit,
                },
            )
        if request.is_read:
            queue_delay = max(0, now - (request.arrival + timing.ctrl_request))
            self.stats.record_read_latency(
                request.finish_time - request.arrival,
                queue_delay,
                request.thread_id,
            )
        self.event_queue.schedule(
            request.finish_time, self.system.complete, request
        )

    def _wake_at(self, time: int) -> None:
        now = self.event_queue.now
        time = max(time, now + 1)
        if self._next_wake is not None and self._next_wake <= time:
            return
        self._next_wake = time
        self.event_queue.schedule(time, self._on_wake, time)

    def _on_wake(self, scheduled_for: int) -> None:
        if self._next_wake == scheduled_for:
            self._next_wake = None
        self.pump()
