"""The memory-system facade: mapping, controllers, and concurrency stats.

:class:`MemorySystem` is the single entry point the cache hierarchy
talks to.  It maps each line address to a (channel, bank, row)
location, forwards the request to the owning channel controller after
the fixed controller-side latency, tracks outstanding-request
concurrency for Figures 4/5, and invokes the request callback when the
data returns.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.events import EventQueue
from repro.common.types import (
    UNASSIGNED_REQUEST_ID,
    MemAccessType,
    MemRequest,
)
from repro.dram.bank import PageMode
from repro.dram.command_controller import CommandChannelController
from repro.dram.controller import ChannelController
from repro.dram.geometry import DRAMGeometry, ddr_geometry, rdram_geometry
from repro.dram.mapping import AddressMapping, make_mapping
from repro.dram.schedulers import Scheduler, make_scheduler
from repro.dram.stats import DRAMStats
from repro.dram.timing import DRAMTiming, ddr_timing, rdram_timing


class MemorySystem:
    """A complete multi-channel DRAM memory system.

    Parameters
    ----------
    event_queue:
        The simulation's shared event queue.
    geometry, timing:
        Physical organization and channel timing; use the
        :meth:`ddr` / :meth:`rdram` factories for the paper's systems.
    mapping:
        ``"page"`` or ``"xor"`` (Section 5.4), or a pre-built
        :class:`AddressMapping`.
    page_mode:
        Open or close row-buffer policy.
    scheduler:
        Scheduler name (see :func:`repro.dram.schedulers.make_scheduler`)
        or instance.  Each logical channel gets the same policy object;
        schedulers are stateless so sharing is safe.
    controller_model:
        ``"request"`` (default, fast, calibrated) or ``"command"``
        (explicit PRECHARGE/ACTIVATE/READ/WRITE commands with full
        inter-command constraints; see
        :mod:`repro.dram.command_controller`).
    """

    def __init__(
        self,
        event_queue: EventQueue,
        geometry: DRAMGeometry,
        timing: DRAMTiming,
        mapping: str | AddressMapping = "page",
        page_mode: PageMode = PageMode.OPEN,
        scheduler: str | Scheduler = "hit-first",
        controller_model: str = "request",
        telemetry=None,
    ) -> None:
        self.event_queue = event_queue
        self.geometry = geometry
        self.timing = timing
        if isinstance(mapping, str):
            mapping = make_mapping(mapping, geometry)
        elif mapping.geometry is not geometry:
            raise ConfigError("mapping was built for a different geometry")
        self.mapping = mapping
        self.page_mode = page_mode
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler)
        self.scheduler = scheduler
        if controller_model == "request":
            controller_cls = ChannelController
        elif controller_model == "command":
            controller_cls = CommandChannelController
        else:
            raise ConfigError(
                f"controller_model must be request|command, "
                f"got {controller_model!r}"
            )
        self.controller_model = controller_model
        self.telemetry = telemetry
        self.stats = DRAMStats()
        self.channels = [
            controller_cls(
                channel_id=i,
                geometry=geometry,
                timing=timing,
                page_mode=page_mode,
                scheduler=scheduler,
                event_queue=event_queue,
                stats=self.stats,
                system=self,
                telemetry=telemetry,
            )
            for i in range(geometry.logical_channels)
        ]
        self._outstanding_total = 0
        self._outstanding_by_thread: dict[int, int] = {}
        #: Per-simulation request-ID counter (see MemRequest.req_id):
        #: owned here so run N in a process is bit-identical to run 1.
        self._req_seq = 0

    # ------------------------------------------------------------------
    # factories for the paper's two systems

    @classmethod
    def ddr(
        cls,
        event_queue: EventQueue,
        channels: int = 2,
        gang: int = 1,
        mapping: str = "page",
        page_mode: PageMode = PageMode.OPEN,
        scheduler: str | Scheduler = "hit-first",
        controller_model: str = "request",
        telemetry=None,
    ) -> "MemorySystem":
        """Multi-channel DDR SDRAM system (Table 1 defaults)."""
        return cls(
            event_queue,
            geometry=ddr_geometry(physical_channels=channels, gang=gang),
            timing=ddr_timing(),
            mapping=mapping,
            page_mode=page_mode,
            scheduler=scheduler,
            controller_model=controller_model,
            telemetry=telemetry,
        )

    @classmethod
    def rdram(
        cls,
        event_queue: EventQueue,
        channels: int = 2,
        gang: int = 1,
        mapping: str = "page",
        page_mode: PageMode = PageMode.OPEN,
        scheduler: str | Scheduler = "hit-first",
        controller_model: str = "request",
        telemetry=None,
    ) -> "MemorySystem":
        """Multi-channel Direct Rambus system (32 banks/chip)."""
        return cls(
            event_queue,
            geometry=rdram_geometry(physical_channels=channels, gang=gang),
            timing=rdram_timing(),
            mapping=mapping,
            page_mode=page_mode,
            scheduler=scheduler,
            controller_model=controller_model,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # request interface

    def submit(self, request: MemRequest) -> None:
        """Accept a request at ``request.arrival`` (current event time)."""
        now = self.event_queue.now
        if request.req_id == UNASSIGNED_REQUEST_ID:
            self._req_seq += 1
            request.req_id = self._req_seq
        mapped = self.mapping.map_line(request.line_addr)
        request.channel, request.bank, request.row = mapped
        self._outstanding_total += 1
        per_thread = self._outstanding_by_thread
        per_thread[request.thread_id] = per_thread.get(request.thread_id, 0) + 1
        self._observe_concurrency(now)
        controller = self.channels[request.channel]
        self.event_queue.schedule(
            now + self.timing.ctrl_request, controller.enqueue, request
        )

    def read(
        self, line_addr: int, thread_id: int, callback=None, rob_occupancy: int = 0,
        iq_occupancy: int = 0,
    ) -> MemRequest:
        """Convenience wrapper: build and submit a read request now."""
        request = MemRequest(
            line_addr,
            MemAccessType.READ,
            thread_id,
            arrival=self.event_queue.now,
            rob_occupancy=rob_occupancy,
            iq_occupancy=iq_occupancy,
            callback=callback,
        )
        self.submit(request)
        return request

    def write(self, line_addr: int, thread_id: int, callback=None) -> MemRequest:
        """Convenience wrapper: build and submit a write-back now."""
        request = MemRequest(
            line_addr,
            MemAccessType.WRITE,
            thread_id,
            arrival=self.event_queue.now,
            callback=callback,
        )
        self.submit(request)
        return request

    def warm_line(self, line_addr: int) -> None:
        """Functional warming: open ``line_addr``'s row, nothing else.

        The sampled engine's fast-forward path calls this for misses it
        chooses not to simulate: the row buffer of the owning bank is
        latched (open page mode only) so row locality carries into the
        next detailed window, but no request is queued, no timing
        advances, and no statistics are recorded.
        """
        channel, bank, row = self.mapping.map_line(line_addr)
        self.channels[channel].warm_row(bank, row)

    def complete(self, request: MemRequest) -> None:
        """Called by a controller when a request's data movement is done."""
        now = self.event_queue.now
        self._outstanding_total -= 1
        per_thread = self._outstanding_by_thread
        remaining = per_thread[request.thread_id] - 1
        if remaining:
            per_thread[request.thread_id] = remaining
        else:
            del per_thread[request.thread_id]
        self._observe_concurrency(now)
        if request.callback is not None:
            request.callback(now, request)

    # ------------------------------------------------------------------
    # state queries

    def outstanding_for_thread(self, thread_id: int) -> int:
        """Outstanding DRAM requests for one thread (request-based scheme)."""
        return self._outstanding_by_thread.get(thread_id, 0)

    @property
    def outstanding_total(self) -> int:
        return self._outstanding_total

    @property
    def busy(self) -> bool:
        return self._outstanding_total > 0

    # ------------------------------------------------------------------
    # statistics plumbing

    def _observe_concurrency(self, now: int) -> None:
        total = self._outstanding_total
        self.stats.outstanding.observe(now, total)
        threads = len(self._outstanding_by_thread) if total >= 2 else 0
        self.stats.thread_concurrency.observe(now, threads)

    def reset_stats(self) -> None:
        """Discard statistics gathered so far (used after cache warm-up).

        The concurrency collectors restart from the *current* state so
        time-weighting stays correct across the reset boundary.
        """
        now = self.event_queue.now
        fresh = DRAMStats()
        self.stats = fresh
        for channel in self.channels:
            channel.stats = fresh
        self._observe_concurrency(now)

    def finish(self, now: int | None = None) -> DRAMStats:
        """Close time-weighted collectors and return the stats bundle."""
        self.stats.finish(self.event_queue.now if now is None else now)
        return self.stats
