"""DRAM system geometry: channels, ganging, chip groups, banks, pages.

The paper's Section 5.3 studies *channel organizations*: ``NC-GG``
means ``N`` physical channels where every ``G`` of them are ganged
(lock-stepped) into one logical channel.  Ganging widens the logical
bus (shorter transfer per line) but reduces the number of requests the
system can serve concurrently; crucially it does **not** add banks --
the ganged channels' banks operate in lock step, so a logical channel
has the bank count of a single physical channel while its row buffer
(page) becomes ``G`` times wider.

Bank counts follow Table 1 and Section 5.4:

* DDR SDRAM: all chips on a channel form one lock-stepped group to
  feed the wide 16 B bus -> 1 group/channel x 4 banks/chip = 4
  independent banks per channel ("eight for the 2-channel system").
* Direct Rambus: every chip is an independent group on the narrow bus
  -> 4 chips/channel x 32 banks/chip = 128 independent banks per
  channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class DRAMGeometry:
    """Physical organization of the memory system.

    Attributes
    ----------
    physical_channels:
        Number of physical channels (2, 4, or 8 in the paper).
    gang:
        Physical channels per logical channel; must divide
        ``physical_channels``.
    groups_per_channel:
        Independent chip groups on one physical channel (1 for DDR
        SDRAM, one per chip for Rambus).
    banks_per_group:
        Banks inside each group (4 for DDR chips, 32 for RDRAM chips).
    page_bytes:
        Row-buffer size of one physical channel's bank.
    line_bytes:
        Cache-line / transfer granularity (64 B in Table 1).
    rows_per_bank:
        Rows per bank; addresses wrap modulo the total capacity.
    """

    physical_channels: int = 2
    gang: int = 1
    groups_per_channel: int = 1
    banks_per_group: int = 4
    page_bytes: int = 2048
    line_bytes: int = 64
    rows_per_bank: int = 8192

    def __post_init__(self) -> None:
        if self.physical_channels < 1:
            raise ConfigError(
                f"physical_channels must be >= 1, got {self.physical_channels}"
            )
        if self.gang < 1 or self.physical_channels % self.gang:
            raise ConfigError(
                f"gang {self.gang} must divide physical_channels "
                f"{self.physical_channels}"
            )
        if self.groups_per_channel < 1 or self.banks_per_group < 1:
            raise ConfigError("groups_per_channel and banks_per_group must be >= 1")
        if self.page_bytes % self.line_bytes:
            raise ConfigError(
                f"page_bytes {self.page_bytes} must be a multiple of "
                f"line_bytes {self.line_bytes}"
            )
        if self.rows_per_bank < 1:
            raise ConfigError(f"rows_per_bank must be >= 1, got {self.rows_per_bank}")
        banks = self.groups_per_channel * self.banks_per_group
        if banks & (banks - 1):
            raise ConfigError(
                f"banks per channel must be a power of two for the XOR "
                f"mapping, got {banks}"
            )

    @property
    def logical_channels(self) -> int:
        """Independent logical channels after ganging."""
        return self.physical_channels // self.gang

    @property
    def banks_per_logical_channel(self) -> int:
        """Independent banks per logical channel (unchanged by ganging)."""
        return self.groups_per_channel * self.banks_per_group

    @property
    def total_banks(self) -> int:
        """Independent banks across the whole system."""
        return self.logical_channels * self.banks_per_logical_channel

    @property
    def effective_page_bytes(self) -> int:
        """Row-buffer width of a logical channel (grows with ganging)."""
        return self.page_bytes * self.gang

    @property
    def lines_per_page(self) -> int:
        """Cache lines held by one logical-channel row buffer."""
        return self.effective_page_bytes // self.line_bytes

    def organization_name(self) -> str:
        """Paper-style label, e.g. ``"8C-2G"`` (Figure 7)."""
        return f"{self.physical_channels}C-{self.gang}G"


def ddr_geometry(
    physical_channels: int = 2, gang: int = 1, rows_per_bank: int = 8192
) -> DRAMGeometry:
    """DDR SDRAM organization: 1 lock-stepped group of 4-bank chips."""
    return DRAMGeometry(
        physical_channels=physical_channels,
        gang=gang,
        groups_per_channel=1,
        banks_per_group=4,
        page_bytes=2048,
        rows_per_bank=rows_per_bank,
    )


def rdram_geometry(
    physical_channels: int = 2,
    gang: int = 1,
    chips_per_channel: int = 4,
    rows_per_bank: int = 2048,
) -> DRAMGeometry:
    """Direct Rambus organization: independent chips of 32 banks each."""
    return DRAMGeometry(
        physical_channels=physical_channels,
        gang=gang,
        groups_per_channel=chips_per_channel,
        banks_per_group=32,
        page_bytes=1024,
        rows_per_bank=rows_per_bank,
    )
