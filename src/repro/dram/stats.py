"""Aggregated DRAM statistics.

Collects exactly what the paper's evaluation reports:

* row-buffer hit/miss rates (Figures 8/9),
* the time-weighted distribution of outstanding requests while the
  DRAM system is busy (Figure 4),
* the time-weighted distribution of how many threads have requests
  outstanding when multiple requests are present (Figure 5),
* read/write counts and average read latency / queueing delay, used
  throughout for sanity checks.
"""

from __future__ import annotations

from repro.common.stats import RateCounter, TimeWeightedHistogram


class DRAMStats:
    """Mutable statistics bundle owned by a :class:`MemorySystem`."""

    def __init__(self) -> None:
        self.row_buffer = RateCounter()
        self.reads = 0
        self.writes = 0
        self.read_latency_sum = 0
        self.read_queue_delay_sum = 0
        self.outstanding = TimeWeightedHistogram()
        self.thread_concurrency = TimeWeightedHistogram()
        self.served_per_thread: dict[int, int] = {}
        self.read_latency_per_thread: dict[int, int] = {}
        self.reads_per_thread: dict[int, int] = {}

    # ------------------------------------------------------------------
    # recording

    def record_service(self, is_read: bool, row_hit: bool, thread_id: int) -> None:
        """One request left the controller (data burst scheduled)."""
        self.row_buffer.record(row_hit)
        if is_read:
            self.reads += 1
        else:
            self.writes += 1
        self.served_per_thread[thread_id] = self.served_per_thread.get(thread_id, 0) + 1

    def record_read_latency(
        self, latency: int, queue_delay: int, thread_id: int = -1
    ) -> None:
        self.read_latency_sum += latency
        self.read_queue_delay_sum += queue_delay
        self.read_latency_per_thread[thread_id] = (
            self.read_latency_per_thread.get(thread_id, 0) + latency
        )
        self.reads_per_thread[thread_id] = (
            self.reads_per_thread.get(thread_id, 0) + 1
        )

    def avg_read_latency_for(self, thread_id: int) -> float:
        """Mean read latency of one thread's requests, in CPU cycles."""
        n = self.reads_per_thread.get(thread_id, 0)
        if not n:
            return 0.0
        return self.read_latency_per_thread[thread_id] / n

    # ------------------------------------------------------------------
    # derived results

    @property
    def total_requests(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        return self.row_buffer.rate

    @property
    def row_miss_rate(self) -> float:
        return self.row_buffer.miss_rate

    @property
    def avg_read_latency(self) -> float:
        """Mean arrival-to-data-return latency of reads, in CPU cycles."""
        return self.read_latency_sum / self.reads if self.reads else 0.0

    @property
    def avg_read_queue_delay(self) -> float:
        return self.read_queue_delay_sum / self.reads if self.reads else 0.0

    def busy_outstanding_distribution(self) -> dict[int, float]:
        """P(#outstanding = n | DRAM busy) -- the Figure 4 distribution.

        The zero bin (idle time) is excluded and the rest renormalized.
        """
        raw = self.outstanding.as_dict()
        raw.pop(0, None)
        total = sum(raw.values())
        if not total:
            return {}
        return {n: w / total for n, w in sorted(raw.items())}

    def probability_outstanding_at_least(self, threshold: int) -> float:
        """P(#outstanding >= threshold | DRAM busy)."""
        dist = self.busy_outstanding_distribution()
        return sum(p for n, p in dist.items() if n >= threshold)

    def thread_concurrency_distribution(self) -> dict[int, float]:
        """P(#threads with requests = t | >= 2 requests outstanding).

        The Figure 5 distribution.  Time with fewer than two requests
        outstanding is recorded in bin 0 and excluded here.
        """
        raw = self.thread_concurrency.as_dict()
        raw.pop(0, None)
        total = sum(raw.values())
        if not total:
            return {}
        return {n: w / total for n, w in sorted(raw.items())}

    def finish(self, now: int) -> None:
        """Close the time-weighted collectors at the end of a run."""
        self.outstanding.finish(now)
        self.thread_concurrency.finish(now)
