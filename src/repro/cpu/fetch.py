"""Instruction-fetch policies (Section 5.1 of the paper).

All policies return an ordered list of threads to fetch from this
cycle; the core takes up to two threads and eight instructions total
(the ``.2.8`` configurations the paper uses).

* **ICOUNT** (Tullsen et al.): highest priority to the thread with the
  fewest instructions in the front end / issue queues.
* **Fetch-Stall** (Tullsen & Brown): stop fetching from threads with
  outstanding L2 misses, but always keep at least one thread eligible.
* **DG** (El-Moursy & Albonesi): block fetch from threads with
  outstanding data-cache (L1D) misses.
* **DWarn** (Cazorla et al., the paper's baseline): threads with
  outstanding data-cache misses are not blocked, only *deprioritized*
  -- they form a second group behind miss-free threads; ICOUNT orders
  each group.
* **Round-robin**: the simple baseline ICOUNT was shown to beat.
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Callable, List

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpu.core import SMTCore
    from repro.cpu.thread import ThreadContext


class FetchPolicy:
    """Orders fetch-eligible threads; earlier entries fetch first."""

    name = "base"

    def order(
        self, eligible: List["ThreadContext"], core: "SMTCore", cycle: int
    ) -> List["ThreadContext"]:
        raise NotImplementedError

    def _trace_gate(
        self, tracer, cycle: int, threads, reason: str
    ) -> None:
        """Record that this policy gated ``threads`` out of fetching.

        Only called when a tracer is attached (callers hoist the
        null check — ``order`` runs every cycle and must pay nothing
        for disabled telemetry); gating decisions are exactly what the
        paper's fetch policies differ on, so they are first-class
        trace events.
        """
        for t in threads:
            tracer.emit(
                cycle, "fetch.gate", "cpu.fetch", t.thread_id,
                args={"policy": self.name, "reason": reason},
            )


#: ICOUNT priority key: fewest in-flight unissued µops, thread id as
#: the tie-break.  An attrgetter (C-level) because every ICOUNT-family
#: policy evaluates it per eligible thread per cycle.
_icount_key = operator.attrgetter("unissued", "thread_id")


class RoundRobinPolicy(FetchPolicy):
    """Rotate thread priority every cycle."""

    name = "round-robin"

    def order(self, eligible, core, cycle):
        if not eligible:
            return []
        n = len(core.threads)
        start = cycle % n
        return sorted(
            eligible, key=lambda t: (t.thread_id - start) % n
        )


class ICountPolicy(FetchPolicy):
    """Fewest in-flight (dispatched, unissued) instructions first."""

    name = "icount"

    def order(self, eligible, core, cycle):
        return sorted(eligible, key=_icount_key)


class FetchStallPolicy(FetchPolicy):
    """Gate threads with outstanding L2 misses; keep one eligible."""

    name = "stall"

    def order(self, eligible, core, cycle):
        # Direct map lookup (== outstanding_l2_misses): this runs per
        # eligible thread per cycle on the fetch hot path.
        l2_misses = core.hierarchy._l2_miss_lines.get
        clean = [t for t in eligible if not l2_misses(t.thread_id)]
        if clean:
            tracer = core.tracer
            if tracer is not None and len(clean) < len(eligible):
                self._trace_gate(
                    tracer, cycle,
                    [t for t in eligible if t not in clean], "l2-miss",
                )
            return sorted(clean, key=_icount_key)
        if not eligible:
            return []
        # All threads have long-latency misses: keep exactly one
        # (the least-loaded) fetching so the pipeline never drains.
        keep = min(eligible, key=_icount_key)
        tracer = core.tracer
        if tracer is not None:
            self._trace_gate(
                tracer, cycle, [t for t in eligible if t is not keep], "l2-miss"
            )
        return [keep]


class DGPolicy(FetchPolicy):
    """Block fetch from threads with outstanding data-cache misses.

    El-Moursy & Albonesi gate on L1 data-cache misses; with real
    workloads those are rare enough (~5-10%) that the gate only trips
    on meaningful events.  Our synthetic streams have much lower L1
    hit rates by construction, so gating on L1 misses would block
    every thread almost always.  We gate on misses that went past the
    L2 instead -- the same long-latency events the policy is meant to
    catch (see DESIGN.md, substitutions).
    """

    name = "dg"

    def order(self, eligible, core, cycle):
        l2_misses = core.hierarchy._l2_miss_lines.get
        clean = [t for t in eligible if not l2_misses(t.thread_id)]
        tracer = core.tracer
        if tracer is not None and len(clean) < len(eligible):
            self._trace_gate(
                tracer, cycle,
                [t for t in eligible if t not in clean], "dcache-miss",
            )
        return sorted(clean, key=_icount_key)


class DWarnPolicy(FetchPolicy):
    """Deprioritize (don't block) threads with data-cache misses.

    Warned = has a miss outstanding past the L2, for the same reason
    as :class:`DGPolicy` (see its docstring).  Two adaptations of the
    published policy to this model:

    * clean threads always outrank warned ones, ICOUNT inside each
      group (as published);
    * warned threads only fetch while the shared integer issue queue
      has headroom.  Cazorla et al. report DWarn keeps the processor
      able to issue on >90% of cycles where ICOUNT clogs; in this
      model a fetch *ordering* alone cannot achieve that once every
      thread is warned, so the "lower priority" of warned threads is
      realized as back-pressure against filling the queue with
      miss-dependent instructions.
    """

    name = "dwarn"

    #: Warned threads stop fetching above this int-IQ occupancy.
    iq_pressure_threshold = 0.75

    def order(self, eligible, core, cycle):
        l2_misses = core.hierarchy._l2_miss_lines.get
        clean = []
        warned = []
        for t in eligible:
            if l2_misses(t.thread_id):
                warned.append(t)
            else:
                clean.append(t)
        clean.sort(key=_icount_key)
        limit = self.iq_pressure_threshold * core.params.int_iq_size
        if core.int_iq_used >= limit:
            tracer = core.tracer
            if clean:
                if tracer is not None and warned:
                    self._trace_gate(tracer, cycle, warned, "iq-pressure")
                return clean
            # Never drain the pipeline completely: least-loaded
            # warned thread stays eligible.
            if not warned:
                return []
            keep = min(warned, key=_icount_key)
            if tracer is not None:
                self._trace_gate(
                    tracer, cycle, [t for t in warned if t is not keep],
                    "iq-pressure",
                )
            return [keep]
        warned.sort(key=_icount_key)
        return clean + warned


_POLICIES: dict[str, Callable[[], FetchPolicy]] = {
    "round-robin": RoundRobinPolicy,
    "icount": ICountPolicy,
    "stall": FetchStallPolicy,
    "dg": DGPolicy,
    "dwarn": DWarnPolicy,
}


def fetch_policy_names() -> list[str]:
    """Names accepted by :func:`make_fetch_policy`, in a stable order."""
    return list(_POLICIES)


def make_fetch_policy(name: str) -> FetchPolicy:
    """Construct a fetch policy by name (e.g. ``"dwarn"``)."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fetch policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None
    return factory()
