"""The SMT core simulation loop.

One :class:`SMTCore` owns a set of :class:`ThreadContext` objects and
drives the whole simulation: it advances the cycle counter, pumps the
shared event queue (which runs the cache and DRAM models), commits
completed instructions in order per thread, and fetches/dispatches new
instructions under the configured fetch policy.

Modelling approach (see DESIGN.md): dependences are resolved at
dispatch; issue-bandwidth contention is charged through slot calendars
(8 integer + 4 floating-point issue slots per cycle); loads touch the
memory hierarchy *at their issue time* so their latency reflects live
cache/DRAM contention.  Shared issue queues, shared load/store queues,
per-thread ROBs, MSHR back-pressure, branch-mispredict fetch redirect
and per-thread fetch gating give the resource-clog behaviour the
paper's fetch policies and thread-aware schedulers act on.

The main loop skips idle stretches: when no thread can fetch (blocked
or ROB-full) the clock jumps to the next event / unblock / commit
time, which makes memory-bound multiprogrammed runs tractable in pure
Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.calendar import SlotCalendar
from repro.common.errors import ConfigError, SimulationError
from repro.common.events import EventQueue
from repro.common.rng import DeterministicRng
from repro.common.types import OpClass
from repro.cache.hierarchy import PENDING, RETRY, MemoryHierarchy
from repro.cpu.branch import BranchTargetBuffer, HybridPredictor
from repro.cpu.fetch import FetchPolicy, make_fetch_policy
from repro.cpu.stats import CoreResult, ThreadResult
from repro.cpu.thread import FOREVER, Inflight, ThreadContext
from repro.workloads.generator import SyntheticStream, Uop


@dataclass(frozen=True)
class CoreParams:
    """Pipeline parameters (Table 1 defaults)."""

    fetch_width: int = 8
    fetch_threads: int = 2
    commit_width: int = 8
    int_issue_width: int = 8
    fp_issue_width: int = 4
    int_iq_size: int = 64
    fp_iq_size: int = 32
    rob_size: int = 256
    lq_size: int = 64
    sq_size: int = 64
    #: Fetch-to-issue depth of the 11-stage pipeline.
    frontend_latency: int = 6
    mispredict_penalty: int = 9
    #: Fetch stall charged when an instruction-fetch group misses L1I.
    icache_miss_penalty: int = 12
    #: Re-issue delay for loads bounced by a full MSHR file.
    retry_delay: int = 4
    #: False (default): branches use the workload's pre-drawn
    #: stochastic mispredict flags.  True: run the Table 1 hybrid
    #: predictor + BTB (repro.cpu.branch) on the generator's branch
    #: sites, so mispredicts emerge from prediction.
    branch_predictor: bool = False
    #: Record a (cycle, per-thread committed) sample every this many
    #: cycles for phase/timeline analysis; 0 (default) disables.
    sample_interval: int = 0
    #: Execution latencies by op class.
    latencies: dict = field(
        default_factory=lambda: {
            OpClass.INT_ALU: 1,
            OpClass.INT_MULT: 7,
            OpClass.FP_ALU: 4,
            OpClass.FP_MULT: 4,
            OpClass.BRANCH: 1,
        }
    )

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "fetch_threads",
            "commit_width",
            "int_issue_width",
            "fp_issue_width",
            "int_iq_size",
            "fp_iq_size",
            "rob_size",
            "lq_size",
            "sq_size",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")


class SMTCore:
    """Cycle-level simultaneous-multithreading core."""

    #: How often (cycles) slot-calendar floors advance for pruning.
    _CALENDAR_SWEEP = 4096
    #: Occupancy-sampling period when telemetry is on but the caller
    #: did not request an explicit ``sample_interval``.
    _TELEMETRY_SAMPLE_INTERVAL = 128

    def __init__(
        self,
        params: CoreParams,
        event_queue: EventQueue,
        hierarchy: MemoryHierarchy,
        fetch_policy: str | FetchPolicy,
        workloads: list[tuple[str, SyntheticStream]],
        icache_rngs: list | None = None,
        telemetry=None,
    ) -> None:
        if not workloads:
            raise ConfigError("at least one thread is required")
        self.params = params
        self.event_queue = event_queue
        self.hierarchy = hierarchy
        if isinstance(fetch_policy, str):
            fetch_policy = make_fetch_policy(fetch_policy)
        self.fetch_policy = fetch_policy
        if icache_rngs is None:
            # Same Mersenne-Twister seeds the old raw-random default
            # used, so standalone cores reproduce historical runs;
            # build_system always passes seed-derived children instead.
            icache_rngs = [
                DeterministicRng(97 + i, tag=f"icache:default:{i}")
                for i in range(len(workloads))
            ]
        self.threads = [
            ThreadContext(i, name, stream, params.rob_size, icache_rngs[i])
            for i, (name, stream) in enumerate(workloads)
        ]
        self._int_cal = SlotCalendar(params.int_issue_width)
        self._fp_cal = SlotCalendar(params.fp_issue_width)
        self.int_iq_used = 0
        self.fp_iq_used = 0
        self.lq_used = 0
        self.sq_used = 0
        self.cycle = 0
        self._commit_ptr = 0
        self._unfinished = 0
        self._measuring = False
        self._latency = params.latencies
        # Issue-coverage tracking (the paper's "% of cycles the
        # processor can issue at least one integer instruction").
        # _release_iq events fire in time order, so counting distinct
        # issue cycles is a single comparison.
        self._last_int_issue_cycle = -1
        self._int_issue_cycles = 0
        #: Optional repro.telemetry.Telemetry session (None = disabled).
        self.telemetry = telemetry
        self._tracer = telemetry.tracer if telemetry is not None else None
        registry = (
            telemetry.registry
            if telemetry is not None and telemetry.registry.enabled
            else None
        )
        self._registry = registry
        if registry is not None:
            ids = [t.thread_id for t in self.threads]
            self._s_committed = [
                registry.series(f"cpu.t{i}.committed") for i in ids
            ]
            self._h_rob = [
                registry.histogram(f"cpu.t{i}.rob_occupancy") for i in ids
            ]
            self._h_int_iq = registry.histogram("cpu.iq.int_occupancy")
        #: Timeline samples: (cycle, committed-per-thread tuple).
        self.timeline: list[tuple[int, tuple[int, ...]]] = []
        #: Effective sampling period: the explicit ``sample_interval``
        #: wins; a live registry turns sampling on at a default period
        #: (occupancy histograms need periodic observation).
        self._sample_every = params.sample_interval
        if registry is not None and not self._sample_every:
            self._sample_every = self._TELEMETRY_SAMPLE_INTERVAL
        self._next_sample = self._sample_every or None
        if params.branch_predictor:
            self._predictors = [HybridPredictor() for _ in self.threads]
            self._btbs = [BranchTargetBuffer() for _ in self.threads]
        else:
            self._predictors = None
            self._btbs = None
        #: Thread-cycles lost in the front end, by cause; every
        #: (thread, cycle) pair gets exactly one disposition, so the
        #: causes plus dispatched thread-cycles sum to
        #: cycles * num_threads.  Skipped (idle-jumped) cycles are
        #: attributed from the state that caused the jump.
        self.stall_cycles = {
            "fetch_blocked": 0,   # mispredict redirect / I-cache miss
            "rob_full": 0,
            "resource_full": 0,   # selected, but IQ/LSQ had no room
            "not_selected": 0,    # eligible, but policy/ports passed it
        }
        #: Dispatch-attempt rejections by resource (event counts,
        #: not thread-cycles; one stalled cycle can retry many times).
        self.dispatch_rejections = {"iq": 0, "lsq": 0}

    # ------------------------------------------------------------------
    # public driver

    def run(
        self,
        instructions_per_thread: int,
        warmup_instructions: int = 0,
        max_cycles: int = 1_000_000_000,
    ) -> CoreResult:
        """Simulate until every thread commits its instruction budget.

        A thread that reaches its budget keeps running (so contention
        on shared resources persists) but its IPC is measured at the
        cycle the budget was reached.  ``warmup_instructions`` are
        committed per thread first with statistics discarded, so caches
        and row buffers reflect steady state.
        """
        if instructions_per_thread < 1:
            raise ConfigError("instructions_per_thread must be >= 1")
        if warmup_instructions:
            self._run_phase(warmup_instructions, max_cycles)
            self.hierarchy.reset_stats()
        start = self.cycle
        issue_cycles_base = self._int_issue_cycles
        stall_base = dict(self.stall_cycles)
        rejection_base = dict(self.dispatch_rejections)
        self._run_phase(instructions_per_thread, max_cycles)
        snapshot = self.hierarchy.snapshot()
        results = []
        reached_all = True
        for t in self.threads:
            end = t.finish_cycle if t.finish_cycle is not None else self.cycle
            if t.finish_cycle is None:
                reached_all = False
            committed = min(t.measured_committed(), t.target)
            results.append(
                ThreadResult(
                    thread_id=t.thread_id,
                    app_name=t.app_name,
                    committed=committed,
                    cycles=max(1, end - start),
                    dram_accesses=snapshot.dram_loads_per_thread.get(
                        t.thread_id, 0
                    ),
                )
            )
        elapsed = max(1, self.cycle - start)
        coverage = (self._int_issue_cycles - issue_cycles_base) / elapsed
        registry = self._registry
        if registry is not None:
            registry.counter("cpu.cycles").add(self.cycle - start)
            registry.gauge("cpu.int_issue_coverage").set(min(1.0, coverage))
            registry.add_counters(
                "cpu.stall",
                {k: v - stall_base[k] for k, v in self.stall_cycles.items()},
            )
            registry.add_counters(
                "cpu.dispatch_reject",
                {
                    k: v - rejection_base[k]
                    for k, v in self.dispatch_rejections.items()
                },
            )
            for r in results:
                prefix = f"cpu.t{r.thread_id}"
                registry.counter(f"{prefix}.instructions").add(r.committed)
                registry.counter(f"{prefix}.dram_accesses").add(
                    r.dram_accesses
                )
                registry.gauge(f"{prefix}.ipc").set(r.committed / r.cycles)
        return CoreResult(
            cycles=self.cycle - start,
            threads=tuple(results),
            reached_all_targets=reached_all,
            fetch_policy=self.fetch_policy.name,
            extra={
                "int_issue_coverage": min(1.0, coverage),
                "stall_cycles": {
                    k: v - stall_base[k]
                    for k, v in self.stall_cycles.items()
                },
                "dispatch_rejections": {
                    k: v - rejection_base[k]
                    for k, v in self.dispatch_rejections.items()
                },
            },
        )

    # ------------------------------------------------------------------
    # phase loop

    #: Optional per-thread commit targets for the next phase (the
    #: sampled engine measures each thread's exact budget-crossing
    #: cycle with these); None — the normal case — gives every thread
    #: the phase's shared target.
    _target_override: list[int] | None = None

    def _run_phase(self, per_thread_target: int, max_cycles: int) -> None:
        override = self._target_override
        for i, t in enumerate(self.threads):
            t.warmup_committed = t.committed
            t.target = per_thread_target if override is None else override[i]
            t.finish_cycle = None
        self._unfinished = len(self.threads)
        deadline = self.cycle + max_cycles
        next_sweep = self.cycle + self._CALENDAR_SWEEP
        # The tick sequence is inlined with pre-bound callables: this
        # loop runs once per simulated cycle, so even the attribute
        # lookups of `self.event_queue.run_until` are measurable.
        # `self.cycle` itself must be re-read every iteration because
        # `_maybe_skip` jumps it.
        event_queue = self.event_queue
        run_until = event_queue.run_until
        # The heap list is peeked directly (its identity is stable;
        # heappush mutates in place): most cycles have no due event,
        # and a method call per cycle just to discover that is the
        # single largest fixed cost of the loop.
        heap = event_queue._heap
        commit = self._commit
        fetch = self._fetch
        maybe_skip = self._maybe_skip
        int_cal = self._int_cal
        fp_cal = self._fp_cal
        sweep_interval = self._CALENDAR_SWEEP
        sampling = self._next_sample is not None
        while self._unfinished and self.cycle < deadline:
            cycle = self.cycle
            if heap and heap[0][0] <= cycle:
                run_until(cycle)
            else:
                event_queue._now = cycle
            commit(cycle)
            fetch(cycle)
            if sampling and cycle >= self._next_sample:
                self._sample(cycle)
                self._next_sample = cycle + self._sample_every
            cycle += 1
            self.cycle = cycle
            if cycle >= next_sweep:
                int_cal.advance_floor(cycle)
                fp_cal.advance_floor(cycle)
                next_sweep = cycle + sweep_interval
            if self._unfinished:
                maybe_skip()
        if sampling:
            # Trailing partial-interval sample: short runs would
            # otherwise lose every instruction committed after the last
            # periodic sample (see metrics.timeline.interval_ipcs).
            self._sample(self.cycle)

    def _sample(self, cycle: int) -> None:
        """Record one timeline/occupancy observation at ``cycle``."""
        if self.params.sample_interval:
            self.timeline.append(
                (cycle, tuple(t.committed for t in self.threads))
            )
        if self._registry is not None:
            for i, t in enumerate(self.threads):
                self._s_committed[i].record(cycle, t.committed)
                self._h_rob[i].observe(len(t.rob))
            self._h_int_iq.observe(self.int_iq_used)

    def _tick(self) -> None:
        """One un-inlined simulation cycle (kept for tests/tools; the
        phase loop above inlines this sequence)."""
        cycle = self.cycle
        self.event_queue.run_until(cycle)
        self._commit(cycle)
        self._fetch(cycle)
        if self._next_sample is not None and cycle >= self._next_sample:
            self._sample(cycle)
            self._next_sample = cycle + self._sample_every
        self.cycle = cycle + 1

    def _maybe_skip(self) -> None:
        """Jump the clock when no thread can make front-end progress."""
        cycle = self.cycle
        threads = self.threads
        for t in threads:
            if t.fetch_blocked_until <= cycle and not t.rob_full:
                return
        candidates = []
        next_event = self.event_queue.peek_time()
        if next_event is not None:
            candidates.append(next_event)
        for t in threads:
            if not t.rob_full and t.fetch_blocked_until < FOREVER:
                candidates.append(t.fetch_blocked_until)
            if t.rob:
                head = t.rob[0]
                if head.finish is not None:
                    candidates.append(head.finish)
        if not candidates:
            raise SimulationError(
                f"deadlock at cycle {cycle}: all threads blocked with no "
                f"pending events"
            )
        target = min(candidates)
        if target > cycle:
            skipped = target - cycle
            stalls = self.stall_cycles
            for t in threads:
                if t.fetch_blocked_until > cycle:
                    stalls["fetch_blocked"] += skipped
                else:  # the only other way into a skip
                    stalls["rob_full"] += skipped
            self.cycle = target

    # ------------------------------------------------------------------
    # commit stage

    def _commit(self, cycle: int) -> None:
        budget = self.params.commit_width
        threads = self.threads
        n = len(threads)
        start = self._commit_ptr
        load_op = OpClass.LOAD
        store_op = OpClass.STORE
        for i in range(n):
            if not budget:
                break
            t = threads[(start + i) % n]
            rob = t.rob
            while budget and rob:
                head = rob[0]
                finish = head.finish
                if finish is None or finish > cycle:
                    break
                rob.popleft()
                budget -= 1
                t.committed += 1
                opc = head.opc
                if opc is load_op:
                    self.lq_used -= 1
                elif opc is store_op:
                    self.sq_used -= 1
                if (
                    t.finish_cycle is None
                    and t.committed - t.warmup_committed >= t.target
                ):
                    t.finish_cycle = cycle
                    self._unfinished -= 1
        self._commit_ptr = (start + 1) % n

    # ------------------------------------------------------------------
    # fetch / dispatch stage

    @property
    def tracer(self):
        """The live event tracer, or None (fetch policies emit
        gate events through this)."""
        return self._tracer

    def _fetch(self, cycle: int) -> None:
        params = self.params
        stalls = self.stall_cycles
        eligible = []
        for t in self.threads:
            if t.fetch_blocked_until > cycle:
                stalls["fetch_blocked"] += 1
            elif t.rob_full:
                stalls["rob_full"] += 1
            else:
                eligible.append(t)
        if not eligible:
            return
        order = self.fetch_policy.order(eligible, self, cycle)
        fetched = 0
        threads_used = 0
        dispatched_threads = set()
        resource_stalled: set[int] = set()
        for t in order:
            if threads_used >= params.fetch_threads:
                break
            if fetched >= params.fetch_width:
                break
            miss_rate = t.stream.profile.icache_miss_rate
            if miss_rate and t.icache_rng.random() < miss_rate:
                t.fetch_blocked_until = cycle + params.icache_miss_penalty
                if self._tracer is not None:
                    self._tracer.emit(
                        cycle, "fetch.icache_miss", "cpu.fetch", t.thread_id,
                        dur=params.icache_miss_penalty,
                    )
                threads_used += 1
                continue
            taken = 0
            while fetched < params.fetch_width and taken < params.fetch_width:
                uop = t.pending_uop
                if uop is None:
                    uop = t.stream.next_uop()
                outcome = self._dispatch(t, uop, cycle)
                if not outcome:
                    t.pending_uop = uop
                    if not taken:
                        resource_stalled.add(t.thread_id)
                    break
                t.pending_uop = None
                fetched += 1
                taken += 1
                if outcome == 2:
                    break  # redirect: nothing behind the branch is fetched
                if t.rob_full:
                    break
            if taken:
                threads_used += 1
                dispatched_threads.add(t.thread_id)
        for t in eligible:
            tid = t.thread_id
            if tid in dispatched_threads:
                continue
            if tid in resource_stalled:
                stalls["resource_full"] += 1
            else:
                stalls["not_selected"] += 1

    def _branch_mispredicted(self, t: ThreadContext, uop: Uop) -> bool:
        """Resolve whether this branch redirects the front end."""
        if self._predictors is None or not uop.pc:
            return uop.mispredict
        mispredicted = self._predictors[t.thread_id].update(uop.pc, uop.taken)
        if uop.taken and not self._btbs[t.thread_id].lookup_and_update(uop.pc):
            mispredicted = True  # unknown target: redirect anyway
        return mispredicted

    def _dispatch(self, t: ThreadContext, uop: Uop, cycle: int) -> int:
        """Rename/dispatch one µop.

        Returns 0 when a shared resource is full (caller retries the
        µop later), 1 on success, 2 on success where the µop was a
        mispredicted branch (the caller stops fetching behind it).
        """
        opc = uop.opc
        if t.rob_full:
            return False
        if opc.is_fp:
            if self.fp_iq_used >= self.params.fp_iq_size:
                self.dispatch_rejections["iq"] += 1
                return 0
        elif self.int_iq_used >= self.params.int_iq_size:
            self.dispatch_rejections["iq"] += 1
            return 0
        if opc is OpClass.LOAD and self.lq_used >= self.params.lq_size:
            self.dispatch_rejections["lsq"] += 1
            return 0
        if opc is OpClass.STORE and self.sq_used >= self.params.sq_size:
            self.dispatch_rejections["lsq"] += 1
            return 0

        mispredicted = (
            opc is OpClass.BRANCH and self._branch_mispredicted(t, uop)
        )
        node = Inflight(
            t.thread_id,
            t.seq,
            opc,
            uop.addr,
            mispredicted,
            cycle + self.params.frontend_latency,
        )
        dep1 = uop.dep1
        if dep1:
            producer = t.producer(dep1)
            if producer is not None:
                finish = producer.finish
                if finish is None:
                    node.deps_left += 1
                    producer.add_waiter(node)
                elif finish > node.ready_lb:
                    node.ready_lb = finish
        dep2 = uop.dep2
        if dep2:
            producer = t.producer(dep2)
            if producer is not None:
                finish = producer.finish
                if finish is None:
                    node.deps_left += 1
                    producer.add_waiter(node)
                elif finish > node.ready_lb:
                    node.ready_lb = finish

        t.ring[t.seq % len(t.ring)] = node
        t.seq += 1
        t.rob.append(node)
        t.fetched += 1
        t.unissued += 1
        if opc.is_fp:
            self.fp_iq_used += 1
            t.iq_fp += 1
        else:
            self.int_iq_used += 1
            t.iq_int += 1
        if opc is OpClass.LOAD:
            self.lq_used += 1
        elif opc is OpClass.STORE:
            self.sq_used += 1
        if mispredicted:
            # Fetch stops until the branch resolves; the waiter reopens
            # it after the refill penalty.
            t.fetch_blocked_until = FOREVER
            node.add_waiter(self._make_branch_unblock(t))
            if self._tracer is not None:
                self._tracer.emit(
                    cycle, "fetch.redirect", "cpu.fetch", t.thread_id,
                    args={"reason": "branch-mispredict"},
                )
        if node.deps_left == 0:
            self._schedule_issue(node)
        return 2 if mispredicted else 1

    def _make_branch_unblock(self, t: ThreadContext):
        penalty = self.params.mispredict_penalty

        def unblock(finish: int) -> None:
            t.fetch_blocked_until = finish + penalty

        return unblock

    # ------------------------------------------------------------------
    # issue / execute

    def _schedule_issue(self, node: Inflight) -> None:
        opc = node.opc
        is_fp = opc is OpClass.FP_ALU or opc is OpClass.FP_MULT
        calendar = self._fp_cal if is_fp else self._int_cal
        earliest = node.ready_lb
        now = self.event_queue.now
        if now > earliest:
            earliest = now
        issue = calendar.allocate(earliest)
        if opc is OpClass.LOAD:
            self.event_queue.schedule(issue, self._issue_load, node)
        elif opc is OpClass.STORE:
            self.event_queue.schedule(issue, self._issue_store, node)
        else:
            self.event_queue.schedule(issue, self._release_iq, node)
            self._resolve(node, issue + self._latency[opc])

    def _release_iq(self, node: Inflight) -> None:
        t = self.threads[node.thread_id]
        t.unissued -= 1
        opc = node.opc
        if opc is OpClass.FP_ALU or opc is OpClass.FP_MULT:
            self.fp_iq_used -= 1
            t.iq_fp -= 1
        else:
            self.int_iq_used -= 1
            t.iq_int -= 1
            now = self.event_queue.now
            if now != self._last_int_issue_cycle:
                self._last_int_issue_cycle = now
                self._int_issue_cycles += 1

    def _issue_load(self, node: Inflight) -> None:
        self._release_iq(node)
        self._try_load(node)

    def _try_load(self, node: Inflight) -> None:
        t = self.threads[node.thread_id]
        now = self.event_queue.now
        result = self.hierarchy.load(
            node.addr,
            t.thread_id,
            now,
            rob_occupancy=len(t.rob),
            iq_occupancy=t.iq_int,
            callback=lambda finish, node=node: self._resolve(node, finish),
        )
        if result is RETRY:
            self.event_queue.schedule(
                now + self.params.retry_delay, self._try_load, node
            )
        elif result is not PENDING:
            self._resolve(node, result)

    def _issue_store(self, node: Inflight) -> None:
        self._release_iq(node)
        t = self.threads[node.thread_id]
        now = self.event_queue.now
        done = self.hierarchy.store(
            node.addr,
            t.thread_id,
            now,
            rob_occupancy=len(t.rob),
            iq_occupancy=t.iq_int,
        )
        self._resolve(node, done)

    # ------------------------------------------------------------------
    # completion plumbing

    def _resolve(self, node: Inflight, finish: int) -> None:
        """The node's finish time became known; wake its dependents."""
        node.finish = finish
        waiters = node.waiters
        if waiters:
            node.waiters = None
            for waiter in waiters:
                if waiter.__class__ is Inflight:
                    if finish > waiter.ready_lb:
                        waiter.ready_lb = finish
                    waiter.deps_left -= 1
                    if waiter.deps_left == 0:
                        self._schedule_issue(waiter)
                else:
                    waiter(finish)
