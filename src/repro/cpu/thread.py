"""Per-thread pipeline state: in-flight instructions, ROB, history ring.

The dependence model: every dispatched instruction becomes an
:class:`Inflight` node.  Producers are found by backwards distance in a
per-thread ring of recent nodes.  A node whose producers all have known
finish times can be scheduled for issue immediately (its ready time is
the max of its producers' finishes); otherwise it registers itself as a
waiter on each unresolved producer and is scheduled when the last one
resolves.  Loads are the only instructions whose finish time is not
known at issue -- they resolve when the cache hierarchy answers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.common.types import OpClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.generator import SyntheticStream, Uop

#: Size of the producer-history ring; must exceed the generator's
#: maximum dependence distance (64).
RING_SIZE = 128

#: Stand-in for "unknown, far future" fetch-unblock times.
FOREVER = 1 << 60


class Inflight:
    """One dispatched, not-yet-committed instruction."""

    __slots__ = (
        "thread_id",
        "seq",
        "opc",
        "addr",
        "mispredict",
        "finish",
        "waiters",
        "deps_left",
        "ready_lb",
    )

    def __init__(
        self,
        thread_id: int,
        seq: int,
        opc: OpClass,
        addr: int,
        mispredict: bool,
        ready_lb: int,
    ) -> None:
        self.thread_id = thread_id
        self.seq = seq
        self.opc = opc
        self.addr = addr
        self.mispredict = mispredict
        self.finish: int | None = None
        self.waiters: list | None = None
        self.deps_left = 0
        self.ready_lb = ready_lb

    def add_waiter(self, waiter) -> None:
        """Register a dependent node (or callback) on this producer."""
        if self.waiters is None:
            self.waiters = [waiter]
        else:
            self.waiters.append(waiter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Inflight(t{self.thread_id} #{self.seq} {self.opc.name} "
            f"finish={self.finish})"
        )


class ThreadContext:
    """Architectural and micro-architectural state of one hardware thread."""

    __slots__ = (
        "thread_id",
        "app_name",
        "stream",
        "rob",
        "rob_size",
        "ring",
        "seq",
        "pending_uop",
        "fetch_blocked_until",
        "unissued",
        "iq_int",
        "iq_fp",
        "loads_inflight",
        "stores_inflight",
        "committed",
        "fetched",
        "warmup_committed",
        "warmup_cycle",
        "target",
        "finish_cycle",
        "icache_rng",
    )

    def __init__(
        self,
        thread_id: int,
        app_name: str,
        stream: "SyntheticStream",
        rob_size: int,
        icache_rng,
    ) -> None:
        self.thread_id = thread_id
        self.app_name = app_name
        self.stream = stream
        self.rob: deque[Inflight] = deque()
        self.rob_size = rob_size
        self.ring: list[Inflight | None] = [None] * RING_SIZE
        self.seq = 0
        self.pending_uop: "Uop | None" = None
        self.fetch_blocked_until = 0
        #: Dispatched-but-not-issued instructions (ICOUNT metric).
        self.unissued = 0
        #: Per-thread integer / fp issue-queue occupancy (for the
        #: IQ-based DRAM scheduling scheme).
        self.iq_int = 0
        self.iq_fp = 0
        self.loads_inflight = 0
        self.stores_inflight = 0
        self.committed = 0
        self.fetched = 0
        #: Measurement baseline set when the warm-up phase ends.
        self.warmup_committed = 0
        self.warmup_cycle = 0
        #: Committed-instruction target (post-warm-up) for this run.
        self.target = 0
        #: Cycle at which the target was reached (None while running).
        self.finish_cycle: int | None = None
        self.icache_rng = icache_rng

    # ------------------------------------------------------------------

    @property
    def rob_full(self) -> bool:
        return len(self.rob) >= self.rob_size

    @property
    def rob_occupancy(self) -> int:
        return len(self.rob)

    def can_fetch(self, cycle: int) -> bool:
        """Front-end eligibility (resource checks happen at dispatch)."""
        return self.fetch_blocked_until <= cycle and not self.rob_full

    def producer(self, distance: int) -> Inflight | None:
        """The node ``distance`` instructions back, if still tracked.

        Returns ``None`` when the producer has aged out of the ring
        (its result is long since available).
        """
        target_seq = self.seq - distance
        if target_seq < 0:
            return None
        node = self.ring[target_seq % RING_SIZE]
        if node is not None and node.seq == target_seq:
            return node
        return None

    def measured_committed(self) -> int:
        """Instructions committed since the warm-up baseline."""
        return self.committed - self.warmup_committed

    def reached_target(self) -> bool:
        return self.measured_committed() >= self.target
