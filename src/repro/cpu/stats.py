"""Result records produced by an SMT core run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ThreadResult:
    """Measured performance of one hardware thread.

    ``cycles`` is the number of measured cycles the thread took to
    commit ``committed`` instructions (for threads that reached their
    target, the cycle their target was hit; otherwise the whole run).
    """

    thread_id: int
    app_name: str
    committed: int
    cycles: int
    dram_accesses: int

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else float("inf")

    @property
    def dram_per_100_instructions(self) -> float:
        """Main-memory accesses per 100 committed instructions."""
        if not self.committed:
            return 0.0
        return 100.0 * self.dram_accesses / self.committed


@dataclass(frozen=True)
class CoreResult:
    """Outcome of one simulation run."""

    cycles: int
    threads: tuple[ThreadResult, ...]
    reached_all_targets: bool
    fetch_policy: str
    extra: dict = field(default_factory=dict)

    @property
    def total_committed(self) -> int:
        return sum(t.committed for t in self.threads)

    @property
    def int_issue_coverage(self) -> float:
        """Fraction of measured cycles with >= 1 integer-side issue.

        The paper uses this to explain ICOUNT's clog on 8-MIX (43.8%
        of cycles issuable vs 92.2% under DWarn).  0.0 when the run
        did not record it.
        """
        return float(self.extra.get("int_issue_coverage", 0.0))

    @property
    def stall_cycles(self) -> dict:
        """Thread-cycles lost in the front end, by cause.

        Keys: fetch_blocked (redirect / I-miss), rob_full,
        resource_full (selected but the shared IQ/LSQ was full), and
        not_selected (eligible but passed over by the policy or the
        2-thread/8-slot fetch ports).  Together with dispatched
        thread-cycles these sum to ``cycles * num_threads``.  Empty
        when the run did not record it.
        """
        return dict(self.extra.get("stall_cycles", {}))

    @property
    def dispatch_rejections(self) -> dict:
        """Dispatch attempts bounced by a full IQ / LSQ (event counts)."""
        return dict(self.extra.get("dispatch_rejections", {}))

    @property
    def throughput_ipc(self) -> float:
        """Total committed instructions per cycle across all threads."""
        return self.total_committed / self.cycles if self.cycles else 0.0

    def ipc_of(self, thread_id: int) -> float:
        return self.threads[thread_id].ipc

    def __str__(self) -> str:
        lines = [
            f"CoreResult: {self.cycles} cycles, policy={self.fetch_policy}, "
            f"throughput={self.throughput_ipc:.3f} IPC"
        ]
        for t in self.threads:
            lines.append(
                f"  t{t.thread_id} {t.app_name:<10} committed={t.committed:>8} "
                f"ipc={t.ipc:.3f} dram/100instr={t.dram_per_100_instructions:.2f}"
            )
        return "\n".join(lines)
