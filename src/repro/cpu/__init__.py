"""Cycle-level SMT out-of-order core model.

Models the processor of Table 1: 8-wide fetch from up to two threads
per cycle, shared issue queues (64 int / 32 fp), shared load/store
queues, a 256-entry reorder buffer per thread, an 11-stage pipeline
with a 9-cycle branch-mispredict penalty, and four instruction-fetch
policies (ICOUNT, Fetch-Stall, DG, DWarn) plus round-robin.

The model resolves dependences at dispatch against a per-thread
history ring and charges issue-bandwidth contention with slot
calendars; loads interact with the cache/DRAM simulators at their
issue time, so memory contention, MSHR back-pressure, ROB clog and
issue-queue clog all emerge structurally rather than analytically.
"""

from repro.cpu.branch import BranchTargetBuffer, HybridPredictor
from repro.cpu.core import CoreParams, SMTCore
from repro.cpu.fetch import (
    DGPolicy,
    DWarnPolicy,
    FetchPolicy,
    FetchStallPolicy,
    ICountPolicy,
    RoundRobinPolicy,
    fetch_policy_names,
    make_fetch_policy,
)
from repro.cpu.stats import CoreResult, ThreadResult
from repro.cpu.thread import ThreadContext

__all__ = [
    "BranchTargetBuffer",
    "CoreParams",
    "HybridPredictor",
    "CoreResult",
    "DGPolicy",
    "DWarnPolicy",
    "FetchPolicy",
    "FetchStallPolicy",
    "ICountPolicy",
    "RoundRobinPolicy",
    "SMTCore",
    "ThreadContext",
    "ThreadResult",
    "fetch_policy_names",
    "make_fetch_policy",
]
