"""Hybrid branch predictor and BTB (Table 1).

Table 1 specifies a hybrid predictor with a 4K-entry global component
and a 1K-entry local component, a 1K-entry 4-way branch target buffer,
and a 32-entry return-address stack per thread.  This module
implements the classic Alpha-21264-style tournament organization:

* **global** — gshare: 2-bit saturating counters indexed by the branch
  PC XOR the global history register;
* **local** — a per-PC history table feeding a table of 2-bit
  counters indexed by the local pattern;
* **chooser** — 2-bit counters (indexed by global history) tracking
  which component predicts better for the current context;
* **BTB** — set-associative tag store; a taken branch whose target is
  absent costs a redirect even when the direction was right.

By default the SMT core uses the workload profile's stochastic
mispredict flags (fast, calibrated).  Setting
``CoreParams(branch_predictor=True)`` switches to this predictor, fed
by the branch PCs and outcomes the workload generator synthesizes —
mispredicts then *emerge* from prediction instead of being drawn.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


class _CounterTable:
    """A table of 2-bit saturating counters (0-3; >=2 predicts taken)."""

    __slots__ = ("_counters", "_mask")

    def __init__(self, entries: int, init: int = 2) -> None:
        if not _is_power_of_two(entries):
            raise ConfigError(f"table entries must be a power of two, got {entries}")
        self._counters = [init] * entries
        self._mask = entries - 1

    def predict(self, index: int) -> bool:
        return self._counters[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        counter = self._counters[i]
        if taken:
            if counter < 3:
                self._counters[i] = counter + 1
        elif counter > 0:
            self._counters[i] = counter - 1


class HybridPredictor:
    """Tournament predictor: gshare + local, with a chooser.

    One instance per hardware thread (each thread has its own global
    history, as on real SMT front ends that tag or split history).
    """

    def __init__(
        self,
        global_entries: int = 4096,
        local_entries: int = 1024,
        local_history_bits: int = 10,
    ) -> None:
        if local_history_bits < 1 or local_history_bits > 16:
            raise ConfigError(
                f"local_history_bits must be in [1, 16], got {local_history_bits}"
            )
        self._global = _CounterTable(global_entries)
        self._chooser = _CounterTable(global_entries, init=2)  # favour global
        self._local_counters = _CounterTable(1 << local_history_bits)
        self._local_history = [0] * local_entries
        self._local_mask = local_entries - 1
        if not _is_power_of_two(local_entries):
            raise ConfigError(
                f"local_entries must be a power of two, got {local_entries}"
            )
        self._history_mask = (1 << local_history_bits) - 1
        self._ghist = 0
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        g_index = pc ^ self._ghist
        use_global = self._chooser.predict(self._ghist ^ pc)
        if use_global:
            return self._global.predict(g_index)
        pattern = self._local_history[pc & self._local_mask]
        return self._local_counters.predict(pattern)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True if it was mispredicted."""
        g_index = pc ^ self._ghist
        chooser_index = self._ghist ^ pc
        pattern = self._local_history[pc & self._local_mask]

        global_says = self._global.predict(g_index)
        local_says = self._local_counters.predict(pattern)
        used_global = self._chooser.predict(chooser_index)
        predicted = global_says if used_global else local_says

        # train the chooser toward whichever component was right
        if global_says != local_says:
            self._chooser.update(chooser_index, global_says == taken)
        self._global.update(g_index, taken)
        self._local_counters.update(pattern, taken)

        self._local_history[pc & self._local_mask] = (
            (pattern << 1) | int(taken)
        ) & self._history_mask
        self._ghist = ((self._ghist << 1) | int(taken)) & 0xFFF

        self.predictions += 1
        mispredicted = predicted != taken
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class BranchTargetBuffer:
    """Set-associative BTB: tracks which branch PCs have known targets.

    A *taken* branch missing from the BTB causes a fetch redirect even
    if its direction was predicted correctly.
    """

    def __init__(self, entries: int = 1024, assoc: int = 4) -> None:
        if entries % assoc:
            raise ConfigError(
                f"BTB entries {entries} not divisible by assoc {assoc}"
            )
        self._sets = entries // assoc
        self._assoc = assoc
        self._table: list[list[int]] = [[] for _ in range(self._sets)]
        self.lookups = 0
        self.misses = 0

    def lookup_and_update(self, pc: int) -> bool:
        """True if the PC's target was present (hit); inserts on miss."""
        self.lookups += 1
        entries = self._table[pc % self._sets]
        if pc in entries:
            entries.remove(pc)
            entries.append(pc)
            return True
        self.misses += 1
        entries.append(pc)
        if len(entries) > self._assoc:
            entries.pop(0)
        return False

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return 1.0 - self.misses / self.lookups
