"""repro -- reproduction of "A Performance Comparison of DRAM Memory
System Optimizations for SMT Processors" (Zhu & Zhang, HPCA 2005).

The library simulates a simultaneous-multithreading processor attached
to multi-channel DDR SDRAM / Direct Rambus memory systems and
reproduces the paper's evaluation: fetch-policy comparisons, memory
concurrency analysis, channel organizations, address mappings, and the
paper's thread-aware DRAM access-scheduling schemes.

Quick start::

    from repro import SystemConfig, run_mix, get_mix

    config = SystemConfig()                  # Table 1 baseline
    result = run_mix(config, get_mix("4-MEM").apps)
    print(result.core)                      # per-thread IPC etc.
    print(result.dram.row_hit_rate)

Experiment drivers (one per paper figure) live in
:mod:`repro.experiments.figures`, or from the command line::

    python -m repro list
    python -m repro fig10 --mixes 2-MEM

Subsystems: :mod:`repro.cpu` (SMT core), :mod:`repro.cache`
(L1/L2/L3 + MSHRs + TLB), :mod:`repro.dram` (channels, banks,
schedulers), :mod:`repro.workloads` (synthetic SPEC2000 profiles),
:mod:`repro.metrics`, :mod:`repro.experiments`.
"""

from repro.experiments.config import SystemConfig
from repro.experiments.figures import EXPERIMENTS, run_experiment
from repro.experiments.parallel import ParallelRunner, ResultCache
from repro.experiments.resilience import BatchJournal, RetryPolicy
from repro.experiments.runner import MixResult, Runner, run_mix, run_single
from repro.faults import FaultPlan, FaultSpec
from repro.metrics.speedup import harmonic_mean_speedup, weighted_speedup
from repro.telemetry import (
    EventTracer,
    MetricRegistry,
    RunManifest,
    Telemetry,
)
from repro.workloads.mixes import all_mix_names, get_mix
from repro.workloads.spec2000 import get_profile, profile_names

__version__ = "1.1.0"

__all__ = [
    "BatchJournal",
    "EXPERIMENTS",
    "EventTracer",
    "FaultPlan",
    "FaultSpec",
    "MetricRegistry",
    "MixResult",
    "ParallelRunner",
    "ResultCache",
    "RetryPolicy",
    "RunManifest",
    "Runner",
    "SystemConfig",
    "Telemetry",
    "all_mix_names",
    "get_mix",
    "get_profile",
    "harmonic_mean_speedup",
    "profile_names",
    "run_experiment",
    "run_mix",
    "run_single",
    "weighted_speedup",
    "__version__",
]
