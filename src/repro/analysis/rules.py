"""The determinism rule catalog (DET001–DET008).

Each rule targets a concrete way reproducibility has been lost in
cycle simulators (see the Ramulator 2.0 re-evaluation literature and
this repo's own history): results must be a pure function of the
configuration, so anything that lets process history, wall-clock time,
hash randomization, or memory layout leak into simulation behaviour is
flagged.

Rules are heuristic where the AST cannot prove intent (DET003, DET005,
DET006, DET007 carry ``WARNING`` severity); suppress deliberate uses
with ``# repro: allow(DETxxx) <justification>`` on the flagged line.
"""

from __future__ import annotations

import ast

from repro.analysis.linter import FileContext, Rule, Severity, register

#: Files allowed to touch :mod:`random` directly: the sanctioned
#: seed-derivation plumbing everything else is supposed to go through.
_RNG_MODULE_SUFFIX = "repro/common/rng.py"


def _is_rng_module(ctx: FileContext) -> bool:
    return ctx.path.replace("\\", "/").endswith(_RNG_MODULE_SUFFIX)


@register
class RawRandomRule(Rule):
    """DET001: raw ``random`` use outside ``repro.common.rng``.

    Module-level :mod:`random` functions share one hidden global
    generator: any new caller (or import-order change) perturbs every
    stream drawn after it, and ``random.Random()`` with no seed is
    nondeterministic outright.  Derive streams with
    :func:`repro.common.rng.child_rng` instead.
    """

    code = "DET001"
    summary = (
        "raw 'random' use; derive streams from repro.common.rng instead"
    )
    severity = Severity.ERROR
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if _is_rng_module(ctx):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    ctx.report(self, node)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                ctx.report(self, node)
        elif isinstance(node, ast.Call):
            name = ctx.dotted_name(node.func)
            if name is not None and name.startswith("random."):
                ctx.report(self, node)


@register
class WallClockRule(Rule):
    """DET002: wall-clock reads (``time.time``, ``datetime.now``).

    Timestamps differ between runs by construction.  Simulation logic
    must use the simulated clock (``EventQueue.now`` / core cycles);
    wall-clock reads are only legitimate in provenance/reporting code,
    where they should carry a pragma.
    """

    code = "DET002"
    summary = "wall-clock read in simulation code; use the simulated clock"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    _CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "date.today",
        }
    )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.dotted_name(node.func)
        if name in self._CLOCK_CALLS:
            ctx.report(self, node, f"wall-clock read '{name}()'")


def _is_set_expression(node: ast.AST) -> bool:
    """Literal sets, set comprehensions, and ``set()``/``frozenset()``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class UnorderedIterationRule(Rule):
    """DET003: iteration over a set expression.

    Set iteration order depends on insertion history and element
    hashes (strings hash differently per process unless
    ``PYTHONHASHSEED`` is pinned), so any downstream consumer that is
    ordering-sensitive — heap pushes, scheduler candidate lists,
    serialized output — becomes run-dependent.  Wrap the expression in
    ``sorted(...)`` or keep an ordered container.
    """

    code = "DET003"
    summary = "iteration over an unordered set; wrap in sorted(...)"
    severity = Severity.WARNING
    node_types = (ast.For, ast.comprehension)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, (ast.For, ast.comprehension))
        if _is_set_expression(node.iter):
            ctx.report(self, node.iter)


@register
class ModuleStateRule(Rule):
    """DET004: module-level mutable state.

    Counters or containers living at module scope accumulate across
    simulations in one process, so a run's behaviour (request IDs,
    cache keys, trace contents) depends on what ran before it — the
    exact failure the per-system request-ID counter fix addressed.
    State must be owned by a per-run object.
    """

    code = "DET004"
    summary = "module-level mutable state; own it in a per-run object"
    severity = Severity.ERROR
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Assign)

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        global_stmts = [
            stmt for stmt in ast.walk(node) if isinstance(stmt, ast.Global)
        ]
        if not global_stmts:
            return
        assigned: set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, ast.Assign):
                for target in inner.targets:
                    if isinstance(target, ast.Name):
                        assigned.add(target.id)
            elif isinstance(inner, ast.AugAssign):
                if isinstance(inner.target, ast.Name):
                    assigned.add(inner.target.id)
        for stmt in global_stmts:
            mutated = [name for name in stmt.names if name in assigned]
            if mutated:
                ctx.report(
                    self,
                    stmt,
                    f"function '{node.name}' mutates module-level "
                    f"state: {', '.join(mutated)}",
                )

    def _check_assign(self, node: ast.Assign, ctx: FileContext) -> None:
        if not isinstance(ctx.parent(node), ast.Module):
            return
        if not isinstance(node.value, (ast.List, ast.Dict, ast.Set)):
            return
        for target in node.targets:
            # ALL_CAPS module-level containers are registry constants
            # by convention (populated at import, read-only after), and
            # dunders (__all__ & co.) are interpreter metadata; only
            # lowercase names are working state.
            if (
                isinstance(target, ast.Name)
                and not target.id.isupper()
                and not (
                    target.id.startswith("__") and target.id.endswith("__")
                )
            ):
                ctx.report(
                    self,
                    node,
                    f"module-level mutable '{target.id}'; "
                    "own it in a per-run object",
                )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(node, ctx)
        elif isinstance(node, ast.Assign):
            self._check_assign(node, ctx)


@register
class HeapTiebreakRule(Rule):
    """DET005: ``heappush`` of a tuple without a deterministic tiebreaker.

    When two heap entries compare equal on their leading keys, Python
    compares the next element — which raises on uncomparable payloads
    (functions, objects) or, worse, silently orders by something
    arbitrary.  Include a monotonic sequence number (the
    ``EventQueue._seq`` pattern) before any payload element.
    """

    code = "DET005"
    summary = (
        "heappush tuple without a deterministic tiebreaker "
        "(add a sequence counter before the payload)"
    )
    severity = Severity.WARNING
    node_types = (ast.Call,)

    _HINTS = ("seq", "tie", "count", "idx", "index", "_id", "order")

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.dotted_name(node.func)
        if name is None or name.split(".")[-1] != "heappush":
            return
        if len(node.args) != 2 or not isinstance(node.args[1], ast.Tuple):
            return
        elements = node.args[1].elts
        for element in elements[1:]:
            text = ast.unparse(element).lower()
            if any(hint in text for hint in self._HINTS):
                return
        ctx.report(self, node)


@register
class UnsortedListingRule(Rule):
    """DET006: directory listing without ``sorted()``.

    ``os.listdir``/``glob`` order is filesystem-dependent (and differs
    between machines and runs); any consumer that iterates, merges, or
    serializes the entries inherits that order.
    """

    code = "DET006"
    summary = "unsorted directory listing; wrap in sorted(...)"
    severity = Severity.WARNING
    node_types = (ast.Call,)

    _FUNCTIONS = frozenset({"os.listdir", "os.scandir", "glob.glob", "glob.iglob"})
    _METHODS = frozenset({"glob", "iglob", "rglob", "iterdir"})

    def _is_listing(self, node: ast.Call, ctx: FileContext) -> bool:
        name = ctx.dotted_name(node.func)
        if name in self._FUNCTIONS:
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._METHODS
        )

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if not self._is_listing(node, ctx):
            return
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.stmt):
                break
            if (
                isinstance(ancestor, ast.Call)
                and isinstance(ancestor.func, ast.Name)
                and ancestor.func.id == "sorted"
            ):
                return
        ctx.report(self, node)


@register
class FloatSetReductionRule(Rule):
    """DET007: float accumulation over an unordered container.

    Float addition is not associative: summing the same values in a
    different order yields different low bits, and set order varies
    between runs.  Sort first, or use ``math.fsum`` (exact, therefore
    order-independent).
    """

    code = "DET007"
    summary = (
        "sum() over an unordered set; sort first or use math.fsum"
    )
    severity = Severity.WARNING
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
            return
        if node.args and _is_set_expression(node.args[0]):
            ctx.report(self, node)


@register
class IdOrderingRule(Rule):
    """DET008: ``id()``-derived keys or ordering.

    ``id()`` is a memory address: it differs between runs, so anything
    keyed, sorted, or serialized by it is irreproducible.  Give objects
    an explicit sequence number instead.
    """

    code = "DET008"
    summary = (
        "id()-derived key/ordering is address-dependent; "
        "use an explicit sequence number"
    )
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            ctx.report(self, node)
