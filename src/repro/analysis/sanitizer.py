"""SimSanitizer: runtime protocol and accounting invariant checking.

The static linter catches nondeterminism *hazards*; this module
catches *violations* as they happen.  A :class:`SimSanitizer` wraps
the live objects of one simulation — the event queue, every DRAM
channel controller (both the request-level and the command-level
model), the MSHR file, and the SMT core — and asserts on every step
the invariants the models are supposed to maintain:

* **Monotonic event time** — the event queue never fires an event
  earlier than one it already fired.
* **DRAM protocol** (command-level model) — tRCD between ACTIVATE and
  a column command, tRP between PRECHARGE and ACTIVATE, tRAS between
  ACTIVATE and PRECHARGE, tRRD between ACTIVATEs of one channel,
  column commands only to the open row, precharges never cutting off
  an in-flight burst.
* **Data-bus integrity** (both models) — bursts on one channel never
  overlap, and (command model) honour the read/write turnaround gap.
* **Accounting** — MSHR allocations and releases balance and the file
  is empty once the system drains (leak detection); outstanding-request
  counts return to zero; the ROB, issue queues, and load/store queues
  never exceed their configured capacity.

The sanitizer only observes: wrapped methods call straight through to
the originals and never change scheduling decisions, so a sanitized
run is bit-identical to a plain one.  Enable it with the
``--sanitize`` CLI flag, ``REPRO_SANITIZE=1`` in the environment, or
the ``sanitizer`` pytest fixture.

Violations are collected (not raised) so one report covers the whole
run; when a telemetry tracer is attached, each violation also lands in
the trace (category ``sanitize``) with the trailing event context that
led up to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import SimulationError
from repro.common.events import EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.hierarchy import MemoryHierarchy
    from repro.cpu.core import SMTCore
    from repro.dram.system import MemorySystem


class SanitizerError(SimulationError):
    """Raised when a sanitized run finishes with violations."""


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to localize it."""

    time: int
    check: str
    detail: str
    context: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extras = "".join(
            f" {key}={value}" for key, value in sorted(self.context.items())
        )
        return f"[cycle {self.time}] {self.check}: {self.detail}{extras}"


class SanitizedEventQueue(EventQueue):
    """Event queue that checks fire-time monotonicity on every pop.

    Same semantics (and same tie-break behaviour) as
    :class:`~repro.common.events.EventQueue`; the pop loops are
    re-implemented with the monotonicity assertion inline because the
    sanitizer must see every individual pop.
    """

    __slots__ = ("_sanitizer", "_last_fired")

    def __init__(self, sanitizer: "SimSanitizer") -> None:
        super().__init__()
        self._sanitizer = sanitizer
        self._last_fired = 0

    def _check_fire(self, when: int) -> None:
        if when < self._last_fired:
            self._sanitizer.record(
                when,
                "event-time",
                f"event fired at {when} after one fired at "
                f"{self._last_fired}",
            )
        self._last_fired = when

    def _drain(self, time: int) -> int:
        # run_until's empty/early-out path lives in the base class;
        # only the pop loop needs the per-event check.
        heap = self._heap
        fired = 0
        while heap and heap[0][0] <= time:
            when, _seq, fn, args = heappop(heap)
            self._check_fire(when)
            self._now = when
            fn(*args)
            fired += 1
        self._now = time
        return fired

    def run_all(self, limit: int = 10_000_000) -> int:
        fired = 0
        heap = self._heap
        while heap:
            when, _seq, fn, args = heappop(heap)
            self._check_fire(when)
            self._now = when
            fn(*args)
            fired += 1
            if fired > limit:
                raise SimulationError(
                    f"event limit {limit} exceeded; runaway loop?"
                )
        return self._now


class _ShadowBank:
    """Independent bank state machine the sanitizer checks against."""

    __slots__ = ("open_row", "act_at", "pre_ready", "rcd_ready", "burst_end")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.act_at = -(10**9)
        self.pre_ready = 0
        self.rcd_ready = 0
        self.burst_end = 0


class SimSanitizer:
    """Collects invariant violations from one simulation run.

    Parameters
    ----------
    tracer:
        Optional :class:`repro.telemetry.EventTracer`; violations are
        emitted into it (category ``sanitize``) together with the
        trailing events that preceded them.
    context_events:
        How many trailing trace events to attach to each violation
        when a tracer is available.
    """

    def __init__(self, tracer: Any = None, context_events: int = 8) -> None:
        self.violations: list[Violation] = []
        self.tracer = tracer
        self.context_events = context_events
        self.checks_run = 0
        self._mshr_allocs = 0
        self._mshr_releases = 0
        self._event_queue: SanitizedEventQueue | None = None
        self._memory: "MemorySystem | None" = None
        self._hierarchy: "MemoryHierarchy | None" = None
        self._core: "SMTCore | None" = None
        self._finished = False

    # ------------------------------------------------------------------
    # violation sink

    @property
    def ok(self) -> bool:
        return not self.violations

    def record(
        self, time: int, check: str, detail: str, **context: Any
    ) -> None:
        """Record one violation (never raises mid-run)."""
        if self.tracer is not None:
            recent = [
                {"t": event.ts, "name": event.name, "cat": event.cat}
                for event in self.tracer.events()[-self.context_events:]
            ]
            context = dict(context, trace_context=recent)
            self.tracer.emit(
                max(0, time), f"sanitize.{check}", "sanitize", -1,
                args={"detail": detail},
            )
        self.violations.append(Violation(time, check, detail, context))

    def report(self) -> str:
        """Multi-line human-readable summary of the run's violations."""
        if not self.violations:
            return (
                f"sanitizer: 0 violations ({self.checks_run} checks run)"
            )
        lines = [
            f"sanitizer: {len(self.violations)} violation(s) "
            f"({self.checks_run} checks run)"
        ]
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)

    def raise_if_violations(self) -> None:
        if self.violations:
            raise SanitizerError(self.report())

    # ------------------------------------------------------------------
    # attachment points

    def make_event_queue(self) -> SanitizedEventQueue:
        """The event queue a sanitized system must be built on."""
        self._event_queue = SanitizedEventQueue(self)
        return self._event_queue

    def attach(
        self,
        core: "SMTCore | None" = None,
        memory: "MemorySystem | None" = None,
        hierarchy: "MemoryHierarchy | None" = None,
    ) -> None:
        """Wrap every supported component of a built system."""
        if memory is not None:
            self.attach_memory(memory)
        if hierarchy is not None:
            self.attach_hierarchy(hierarchy)
        if core is not None:
            self.attach_core(core)

    def attach_memory(self, memory: "MemorySystem") -> None:
        self._memory = memory
        for channel in memory.channels:
            if memory.controller_model == "command":
                self._watch_command_channel(channel)
            else:
                self._watch_request_channel(channel)

    def attach_hierarchy(self, hierarchy: "MemoryHierarchy") -> None:
        self._hierarchy = hierarchy
        self._watch_mshr(hierarchy.mshr)

    def attach_core(self, core: "SMTCore") -> None:
        self._core = core
        self._watch_core(core)

    # ------------------------------------------------------------------
    # request-level controller checks

    def _watch_request_channel(self, channel: Any) -> None:
        original: Callable[..., None] = channel._issue

        def checked_issue(
            request: Any, now: int, reason: str | None = None
        ) -> None:
            self.checks_run += 1
            bus_before = channel.bus_free_at
            original(request, now, reason)
            data_end = channel.bus_free_at
            data_start = data_end - channel.transfer
            ch = channel.channel_id
            if data_start < bus_before:
                self.record(
                    now, "bus-overlap",
                    f"burst [{data_start}, {data_end}) overlaps bus "
                    f"committed until {bus_before}",
                    channel=ch, bank=request.bank,
                )
            if data_start < now:
                self.record(
                    now, "bus-overlap",
                    f"burst starts at {data_start}, before issue at {now}",
                    channel=ch, bank=request.bank,
                )
            if request.issue_time != now:
                self.record(
                    now, "accounting",
                    f"request #{request.req_id} issue_time "
                    f"{request.issue_time} != issue cycle {now}",
                    channel=ch,
                )
            if request.finish_time < data_end:
                self.record(
                    now, "accounting",
                    f"request #{request.req_id} finishes at "
                    f"{request.finish_time}, before its burst ends at "
                    f"{data_end}",
                    channel=ch,
                )
            bank = channel.banks[request.bank]
            if bank.free_at < now:
                self.record(
                    now, "bank-state",
                    f"bank free_at {bank.free_at} regressed behind "
                    f"issue cycle {now}",
                    channel=ch, bank=request.bank,
                )
            if request in channel.reads or request in channel.writes:
                self.record(
                    now, "accounting",
                    f"request #{request.req_id} still queued after issue",
                    channel=ch,
                )

        channel._issue = checked_issue

    # ------------------------------------------------------------------
    # command-level controller checks

    def _watch_command_channel(self, channel: Any) -> None:
        from repro.dram.bank import PageMode
        from repro.dram.command_controller import Command

        timing = channel.timing
        shadows = [_ShadowBank() for _ in channel.banks]
        last_act = -(10**9)
        last_cmd = -(10**9)
        burst_end = 0
        burst_dir: str | None = None
        original: Callable[..., None] = channel._issue
        original_refresh: Callable[[int], None] = channel._maybe_refresh
        ch = channel.channel_id

        def checked_issue(
            request: Any, command: Any, now: int, reason: str | None = None
        ) -> None:
            nonlocal last_act, last_cmd, burst_end, burst_dir
            self.checks_run += 1
            shadow = shadows[request.bank]
            bank_ctx = {"channel": ch, "bank": request.bank}
            if now < last_cmd:
                self.record(
                    now, "command-time",
                    f"command issued at {now} after one at {last_cmd}",
                    **bank_ctx,
                )
            last_cmd = now
            if command is Command.ACTIVATE:
                if shadow.open_row is not None:
                    self.record(
                        now, "protocol",
                        f"ACTIVATE to bank with row {shadow.open_row} "
                        f"still open",
                        **bank_ctx,
                    )
                if now < shadow.pre_ready:
                    self.record(
                        now, "tRP",
                        f"ACTIVATE at {now} before precharge completes "
                        f"at {shadow.pre_ready}",
                        **bank_ctx,
                    )
                if now < last_act + timing.t_rrd:
                    self.record(
                        now, "tRRD",
                        f"ACTIVATE at {now}, previous channel ACTIVATE "
                        f"at {last_act} (tRRD={timing.t_rrd})",
                        **bank_ctx,
                    )
            elif command is Command.PRECHARGE:
                if shadow.open_row is None:
                    self.record(
                        now, "protocol", "PRECHARGE to a closed bank",
                        **bank_ctx,
                    )
                if now < shadow.act_at + timing.t_ras:
                    self.record(
                        now, "tRAS",
                        f"PRECHARGE at {now}, bank activated at "
                        f"{shadow.act_at} (tRAS={timing.t_ras})",
                        **bank_ctx,
                    )
                if now < shadow.burst_end:
                    self.record(
                        now, "protocol",
                        f"PRECHARGE at {now} cuts off burst ending at "
                        f"{shadow.burst_end}",
                        **bank_ctx,
                    )
            else:  # READ / WRITE
                if shadow.open_row != request.row:
                    self.record(
                        now, "protocol",
                        f"column command to row {request.row}, bank has "
                        f"{'row ' + str(shadow.open_row) if shadow.open_row is not None else 'no row'} open",
                        **bank_ctx,
                    )
                if now < shadow.rcd_ready:
                    self.record(
                        now, "tRCD",
                        f"column command at {now} before tRCD satisfied "
                        f"at {shadow.rcd_ready}",
                        **bank_ctx,
                    )
            original(request, command, now, reason)
            # Mirror the command's effect onto the shadow state.
            if command is Command.ACTIVATE:
                shadow.open_row = request.row
                shadow.act_at = now
                shadow.rcd_ready = now + timing.t_row
                last_act = now
            elif command is Command.PRECHARGE:
                shadow.open_row = None
                shadow.pre_ready = now + timing.t_pre
            else:
                data_end = channel.bus_free_at
                data_start = data_end - channel.transfer
                direction = "r" if command is Command.READ else "w"
                gap = 0
                if burst_dir is not None and burst_dir != direction:
                    gap = timing.t_turnaround
                if data_start < burst_end:
                    self.record(
                        now, "bus-overlap",
                        f"burst [{data_start}, {data_end}) overlaps "
                        f"previous burst ending at {burst_end}",
                        **bank_ctx,
                    )
                elif data_start < burst_end + gap:
                    self.record(
                        now, "turnaround",
                        f"burst at {data_start} inside the "
                        f"{gap}-cycle turnaround after {burst_end}",
                        **bank_ctx,
                    )
                burst_end = data_end
                burst_dir = direction
                shadow.burst_end = data_end
                if channel.page_mode is PageMode.CLOSE:
                    shadow.open_row = None
                    shadow.pre_ready = data_end + timing.t_pre
                    if data_end < shadow.act_at + timing.t_ras:
                        self.record(
                            now, "tRAS",
                            f"auto-precharge at {data_end}, bank "
                            f"activated at {shadow.act_at} "
                            f"(tRAS={timing.t_ras})",
                            **bank_ctx,
                        )

        def checked_refresh(now: int) -> None:
            before = channel.refreshes
            original_refresh(now)
            if channel.refreshes != before:
                for shadow, bank in zip(shadows, channel.banks):
                    shadow.open_row = None
                    shadow.pre_ready = max(shadow.pre_ready, bank.ready_at)

        channel._issue = checked_issue
        channel._maybe_refresh = checked_refresh

    # ------------------------------------------------------------------
    # MSHR accounting

    def _watch_mshr(self, mshr: Any) -> None:
        from repro.cache.mshr import MSHRStatus

        original_register = mshr.register
        original_complete = mshr.complete

        def checked_register(
            line_addr: int, thread_id: int, waiter: Any = None
        ) -> Any:
            self.checks_run += 1
            status = original_register(line_addr, thread_id, waiter)
            if status is MSHRStatus.NEW:
                self._mshr_allocs += 1
            if len(mshr) > mshr.entries:
                self.record(
                    self._now(), "mshr",
                    f"occupancy {len(mshr)} exceeds capacity "
                    f"{mshr.entries}",
                )
            return status

        def checked_complete(line_addr: int, finish: int) -> Any:
            self.checks_run += 1
            if not mshr.pending(line_addr):
                self.record(
                    finish, "mshr",
                    f"completion for line {line_addr:#x} without a live "
                    f"entry",
                )
            self._mshr_releases += 1
            return original_complete(line_addr, finish)

        mshr.register = checked_register
        mshr.complete = checked_complete

    # ------------------------------------------------------------------
    # core occupancy

    def _watch_core(self, core: "SMTCore") -> None:
        params = core.params
        original_dispatch = core._dispatch

        def checked_dispatch(t: Any, uop: Any, cycle: int) -> int:
            outcome = original_dispatch(t, uop, cycle)
            self.checks_run += 1
            if len(t.rob) > params.rob_size:
                self.record(
                    cycle, "rob",
                    f"thread {t.thread_id} ROB occupancy {len(t.rob)} "
                    f"exceeds capacity {params.rob_size}",
                )
            if core.int_iq_used > params.int_iq_size:
                self.record(
                    cycle, "iq",
                    f"integer IQ occupancy {core.int_iq_used} exceeds "
                    f"capacity {params.int_iq_size}",
                )
            if core.fp_iq_used > params.fp_iq_size:
                self.record(
                    cycle, "iq",
                    f"FP IQ occupancy {core.fp_iq_used} exceeds "
                    f"capacity {params.fp_iq_size}",
                )
            if core.lq_used > params.lq_size or core.sq_used > params.sq_size:
                self.record(
                    cycle, "lsq",
                    f"LSQ occupancy {core.lq_used}/{core.sq_used} exceeds "
                    f"capacity {params.lq_size}/{params.sq_size}",
                )
            return outcome

        core._dispatch = checked_dispatch

    # ------------------------------------------------------------------
    # drain / finish

    def _now(self) -> int:
        return self._event_queue.now if self._event_queue is not None else 0

    def finish(self, event_queue: EventQueue | None = None) -> None:
        """Drain the system and run the end-of-run balance checks.

        Call this *after* the run's results have been captured: the
        drain fires every still-pending event (completing in-flight
        misses) so leak detection can tell "in flight" apart from
        "leaked".  Idempotent.
        """
        if self._finished:
            return
        self._finished = True
        queue = event_queue or self._event_queue
        if queue is not None:
            queue.run_all()
        now = queue.now if queue is not None else 0
        hierarchy = self._hierarchy
        if hierarchy is not None:
            live = len(hierarchy.mshr)
            if live:
                self.record(
                    now, "mshr-leak",
                    f"{live} MSHR entr{'y' if live == 1 else 'ies'} still "
                    f"allocated after drain",
                )
            if self._mshr_allocs != self._mshr_releases:
                self.record(
                    now, "mshr-leak",
                    f"allocate/release imbalance: {self._mshr_allocs} "
                    f"allocations vs {self._mshr_releases} releases",
                )
        memory = self._memory
        if memory is not None:
            if memory.outstanding_total != 0:
                self.record(
                    now, "outstanding",
                    f"{memory.outstanding_total} DRAM requests still "
                    f"outstanding after drain",
                )
            for channel in memory.channels:
                if channel.pending:
                    self.record(
                        now, "outstanding",
                        f"{channel.pending} requests still queued in "
                        f"channel {channel.channel_id} after drain",
                    )
