"""AST-based determinism linter: framework and driver.

The linter exists because the experiment engine caches and memoizes
simulation results under the assumption that a run is a pure function
of its configuration.  Any nondeterminism — a raw :mod:`random` call,
a wall-clock read, iteration order leaking from a ``set`` into a
scheduling decision — silently breaks that contract and poisons every
cached figure downstream.

The framework is flake8-plugin shaped: each check is a :class:`Rule`
subclass registered with :func:`register`, declaring which AST node
types it wants to see.  One walk of each file's tree dispatches nodes
to the interested rules; rules report :class:`Finding` objects through
the shared :class:`FileContext`.

Suppression: a finding on line *N* is suppressed when line *N* carries
a ``# repro: allow(DETxxx)`` pragma naming its code.  Pragmas should
carry a trailing justification, e.g.::

    created = time.time()  # repro: allow(DET002) wall-clock provenance

Rules live in :mod:`repro.analysis.rules`; see
``docs/static-analysis.md`` for the catalog and how to add one.
"""

from __future__ import annotations

import ast
import enum
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are near-certain reproducibility hazards;
    ``WARNING`` findings are heuristic (the pattern is dangerous in
    ordering-sensitive positions, which the AST alone cannot always
    prove).  Both fail ``repro lint`` unless suppressed.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One linter hit, pinned to a file location.

    Deep-analysis findings additionally carry ``anchor`` (the enclosing
    function's qualified name, used for line-stable baseline
    fingerprints) and ``trace`` — the source→sink path as
    ``(path, line, description)`` steps.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity
    anchor: str = ""
    trace: tuple[tuple[str, int, str], ...] = ()

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity, for baseline matching.

        Digits are normalized out of the message so a finding keeps its
        fingerprint when unrelated edits shift line numbers embedded in
        rendered positions; the anchor pins it to its function.
        """
        message = re.sub(r"\d+", "N", self.message)
        raw = f"{self.code}|{self.path}|{self.anchor}|{message}"
        return hashlib.sha256(raw.encode()).hexdigest()[:20]

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col: CODE message``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{self.severity.value}] {self.message}"
        )

    def render_trace(self) -> list[str]:
        """Indented source→sink steps (empty for shallow findings)."""
        return [
            f"    {'->' if i else '  '} {path}:{line}: {text}"
            for i, (path, line, text) in enumerate(self.trace)
        ]

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation (``repro lint --format json``)."""
        doc: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
        }
        if self.anchor:
            doc["anchor"] = self.anchor
        if self.trace:
            doc["trace"] = [list(step) for step in self.trace]
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (summary-cache round trips)."""
        return cls(
            path=str(doc["path"]),
            line=int(doc["line"]),  # type: ignore[call-overload]
            col=int(doc["col"]),  # type: ignore[call-overload]
            code=str(doc["code"]),
            message=str(doc["message"]),
            severity=Severity(doc["severity"]),
            anchor=str(doc.get("anchor", "")),
            trace=tuple(
                (str(p), int(n), str(t)) for p, n, t in doc.get("trace", ())
            ),
        )


#: ``# repro: allow(DET001)`` or ``# repro: allow(DET001, FS003) why...``
#: Code families: DET (per-line determinism), TNT (taint source→sink),
#: FS (filesystem atomicity).
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Z]{2,4}\d{3}(?:\s*,\s*[A-Z]{2,4}\d{3})*)\s*\)"
)


def pragmas_for_source(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule codes allowed on that line.

    Only genuine comments count: the source is tokenized so a pragma
    *example* inside a docstring neither suppresses anything nor trips
    the DET000 unused-pragma audit.  Tokenization failures (the file
    parsed, so these are exotic) fall back to a plain line scan.
    """
    allowed: dict[int, frozenset[str]] = {}

    def record(lineno: int, comment: str) -> None:
        # Anchored at the comment's own start: a comment *quoting* the
        # pragma syntax (like the one above this function) is not a
        # pragma.
        match = _PRAGMA_RE.match(comment)
        if match is not None:
            allowed[lineno] = frozenset(
                code.strip() for code in match.group(1).split(",")
            )

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                record(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        allowed.clear()
        for lineno, text in enumerate(source.splitlines(), start=1):
            hash_at = text.find("#")
            while hash_at != -1:
                record(lineno, text[hash_at:])
                if lineno in allowed:
                    break
                hash_at = text.find("#", hash_at + 1)
    return allowed


#: Meta-rule: a pragma that suppresses nothing.  Not in the registry
#: (it has no AST check); emitted by :func:`apply_pragmas` when every
#: rule a pragma names has run and none of its codes matched a finding.
UNUSED_PRAGMA_CODE = "DET000"
UNUSED_PRAGMA_SUMMARY = (
    "unused suppression: pragma names code(s) that suppress nothing here"
)


def apply_pragmas(
    findings: Iterable[Finding],
    allowed: dict[int, frozenset[str]],
    path: str,
    ran_codes: frozenset[str] | None = None,
    warn_unused: bool = True,
    used: set[tuple[str, int, str]] | None = None,
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (kept, DET000-unused-pragma findings).

    ``ran_codes`` is the set of rule codes that actually executed this
    invocation; pragma codes outside it (e.g. a TNT code during a
    shallow run) are never reported unused, so suppressions for deeper
    analyses survive shallow runs.  ``used`` (optional, shared across
    files for cross-file deep findings) accumulates
    ``(path, line, code)`` triples that suppressed something.
    """
    if used is None:
        used = set()
    kept: list[Finding] = []
    for finding in findings:
        if finding.code in allowed.get(finding.line, frozenset()):
            used.add((path, finding.line, finding.code))
        else:
            kept.append(finding)
    unused: list[Finding] = []
    if warn_unused:
        for line in sorted(allowed):
            for code in sorted(allowed[line]):
                if ran_codes is not None and code not in ran_codes:
                    continue
                if (path, line, code) not in used:
                    unused.append(
                        Finding(
                            path=path,
                            line=line,
                            col=1,
                            code=UNUSED_PRAGMA_CODE,
                            message=(
                                f"unused suppression: {code} suppresses "
                                "nothing on this line"
                            ),
                            severity=Severity.WARNING,
                        )
                    )
    return kept, unused


class FileContext:
    """Per-file state shared by every rule during one walk.

    Provides the parse tree, parent links (``parent``), and the
    ``report`` sink rules append findings to.
    """

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self.findings: list[Finding] = []
        # Parent links are attached to the nodes themselves; an AST is
        # private to this walk, so decorating it is safe and avoids
        # keying a side table by object identity.
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                setattr(child, "_repro_parent", parent)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        parent = getattr(node, "_repro_parent", None)
        return parent if isinstance(parent, ast.AST) else None

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def dotted_name(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to ``"a.b.c"`` (else None)."""
        parts: list[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None

    def report(self, rule: "Rule", node: ast.AST, message: str | None = None) -> None:
        """Record a finding for ``rule`` at ``node``'s location."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=rule.code,
                message=message if message is not None else rule.summary,
                severity=rule.severity,
            )
        )


class Rule:
    """Base class for determinism checks.

    Subclasses set the class attributes and implement :meth:`check`,
    which is called once for every node whose type appears in
    ``node_types``.  Register concrete rules with :func:`register` so
    the driver and the CLI can find them.
    """

    #: Unique rule identifier, e.g. ``"DET001"``.
    code: str = ""
    #: One-line description used as the default finding message.
    summary: str = ""
    severity: Severity = Severity.WARNING
    #: AST node types this rule wants to inspect.
    node_types: tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        raise NotImplementedError


_REGISTRY: list[type[Rule]] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code or not rule_cls.node_types:
        raise ValueError(
            f"rule {rule_cls.__name__} must define code and node_types"
        )
    if any(existing.code == rule_cls.code for existing in _REGISTRY):
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY.append(rule_cls)
    return rule_cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, sorted by code."""
    # The import populates the registry on first use; rules live in a
    # separate module so the framework stays dependency-free.
    import repro.analysis.rules  # noqa: F401

    return sorted(_REGISTRY, key=lambda rule: rule.code)


def lint_source_raw(
    source: str,
    path: str = "<string>",
    rules: Sequence[type[Rule]] | None = None,
) -> list[Finding]:
    """Run the rules over one source string with *no* pragma filtering.

    The deep analyzer uses this to cache pre-suppression findings per
    file and apply pragmas once, globally (a deep finding may be
    suppressed at its source line or its sink line, in different
    files).  Raises :class:`SyntaxError` if the source does not parse.
    """
    tree = ast.parse(source, filename=path)
    rule_classes = list(rules) if rules is not None else all_rules()
    instances = [rule_cls() for rule_cls in rule_classes]
    dispatch: dict[type, list[Rule]] = {}
    for instance in instances:
        for node_type in instance.node_types:
            dispatch.setdefault(node_type, []).append(instance)
    ctx = FileContext(path, tree, source)
    for node in ast.walk(tree):
        for instance in dispatch.get(type(node), ()):
            instance.check(node, ctx)
    return ctx.findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[type[Rule]] | None = None,
    warn_unused_pragmas: bool = True,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings, sorted.

    A pragma whose codes all ran but suppressed nothing earns a
    :data:`DET000 <UNUSED_PRAGMA_CODE>` finding (disable with
    ``warn_unused_pragmas=False``); pragma codes for rules *not* in
    this run (e.g. TNT/FS codes during a shallow lint) are left alone.
    Raises :class:`SyntaxError` if the source does not parse — the
    caller (see :func:`lint_paths`) decides how to surface that.
    """
    rule_classes = list(rules) if rules is not None else all_rules()
    findings = lint_source_raw(source, path, rule_classes)
    ran_codes = frozenset(rule.code for rule in rule_classes)
    kept, unused = apply_pragmas(
        findings,
        pragmas_for_source(source),
        path,
        ran_codes=ran_codes,
        warn_unused=warn_unused_pragmas,
    )
    return sorted(kept + unused, key=lambda finding: finding.sort_key)


def lint_file(
    path: str | Path, rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(source, str(file_path), rules)


@dataclass
class LintReport:
    """Outcome of linting a set of paths."""

    findings: list[Finding]
    #: Files that could not be linted ("path: reason") — unreadable or
    #: syntactically invalid.  Any entry makes the run a hard failure.
    errors: list[str]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_dict(self) -> dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "errors": list(self.errors),
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _python_files(paths: Iterable[str | Path]) -> tuple[list[Path], list[str]]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    errors: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            errors.append(f"{path}: no such file or directory")
    return files, errors


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[type[Rule]] | None = None,
) -> LintReport:
    """Lint files and/or directory trees; the CLI's workhorse."""
    files, errors = _python_files(paths)
    findings: list[Finding] = []
    for file_path in files:
        try:
            findings.extend(lint_file(file_path, rules))
        except SyntaxError as exc:
            errors.append(f"{file_path}: {exc.msg} (line {exc.lineno})")
        except OSError as exc:
            errors.append(f"{file_path}: {exc.strerror or exc}")
    return LintReport(
        findings=sorted(findings, key=lambda finding: finding.sort_key),
        errors=errors,
        files_checked=len(files),
    )
