"""AST-based determinism linter: framework and driver.

The linter exists because the experiment engine caches and memoizes
simulation results under the assumption that a run is a pure function
of its configuration.  Any nondeterminism — a raw :mod:`random` call,
a wall-clock read, iteration order leaking from a ``set`` into a
scheduling decision — silently breaks that contract and poisons every
cached figure downstream.

The framework is flake8-plugin shaped: each check is a :class:`Rule`
subclass registered with :func:`register`, declaring which AST node
types it wants to see.  One walk of each file's tree dispatches nodes
to the interested rules; rules report :class:`Finding` objects through
the shared :class:`FileContext`.

Suppression: a finding on line *N* is suppressed when line *N* carries
a ``# repro: allow(DETxxx)`` pragma naming its code.  Pragmas should
carry a trailing justification, e.g.::

    created = time.time()  # repro: allow(DET002) wall-clock provenance

Rules live in :mod:`repro.analysis.rules`; see
``docs/static-analysis.md`` for the catalog and how to add one.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are near-certain reproducibility hazards;
    ``WARNING`` findings are heuristic (the pattern is dangerous in
    ordering-sensitive positions, which the AST alone cannot always
    prove).  Both fail ``repro lint`` unless suppressed.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One linter hit, pinned to a file location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col: CODE message``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation (``repro lint --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
        }


#: ``# repro: allow(DET001)`` or ``# repro: allow(DET001, DET006) why...``
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\s*\)"
)


def pragmas_for_source(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule codes allowed on that line."""
    allowed: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is not None:
            codes = frozenset(
                code.strip() for code in match.group(1).split(",")
            )
            allowed[lineno] = codes
    return allowed


class FileContext:
    """Per-file state shared by every rule during one walk.

    Provides the parse tree, parent links (``parent``), and the
    ``report`` sink rules append findings to.
    """

    def __init__(self, path: str, tree: ast.Module, source: str) -> None:
        self.path = path
        self.tree = tree
        self.source = source
        self.findings: list[Finding] = []
        # Parent links are attached to the nodes themselves; an AST is
        # private to this walk, so decorating it is safe and avoids
        # keying a side table by object identity.
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                setattr(child, "_repro_parent", parent)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        parent = getattr(node, "_repro_parent", None)
        return parent if isinstance(parent, ast.AST) else None

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def dotted_name(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to ``"a.b.c"`` (else None)."""
        parts: list[str] = []
        current: ast.AST = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None

    def report(self, rule: "Rule", node: ast.AST, message: str | None = None) -> None:
        """Record a finding for ``rule`` at ``node``'s location."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=rule.code,
                message=message if message is not None else rule.summary,
                severity=rule.severity,
            )
        )


class Rule:
    """Base class for determinism checks.

    Subclasses set the class attributes and implement :meth:`check`,
    which is called once for every node whose type appears in
    ``node_types``.  Register concrete rules with :func:`register` so
    the driver and the CLI can find them.
    """

    #: Unique rule identifier, e.g. ``"DET001"``.
    code: str = ""
    #: One-line description used as the default finding message.
    summary: str = ""
    severity: Severity = Severity.WARNING
    #: AST node types this rule wants to inspect.
    node_types: tuple[type, ...] = ()

    def check(self, node: ast.AST, ctx: FileContext) -> None:
        raise NotImplementedError


_REGISTRY: list[type[Rule]] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.code or not rule_cls.node_types:
        raise ValueError(
            f"rule {rule_cls.__name__} must define code and node_types"
        )
    if any(existing.code == rule_cls.code for existing in _REGISTRY):
        raise ValueError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY.append(rule_cls)
    return rule_cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, sorted by code."""
    # The import populates the registry on first use; rules live in a
    # separate module so the framework stays dependency-free.
    import repro.analysis.rules  # noqa: F401

    return sorted(_REGISTRY, key=lambda rule: rule.code)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[type[Rule]] | None = None,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings, sorted.

    Raises :class:`SyntaxError` if the source does not parse — the
    caller (see :func:`lint_paths`) decides how to surface that.
    """
    tree = ast.parse(source, filename=path)
    rule_classes = list(rules) if rules is not None else all_rules()
    instances = [rule_cls() for rule_cls in rule_classes]
    dispatch: dict[type, list[Rule]] = {}
    for instance in instances:
        for node_type in instance.node_types:
            dispatch.setdefault(node_type, []).append(instance)
    ctx = FileContext(path, tree, source)
    for node in ast.walk(tree):
        for instance in dispatch.get(type(node), ()):
            instance.check(node, ctx)
    allowed = pragmas_for_source(source)
    kept = [
        finding
        for finding in ctx.findings
        if finding.code not in allowed.get(finding.line, frozenset())
    ]
    return sorted(kept, key=lambda finding: finding.sort_key)


def lint_file(
    path: str | Path, rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(source, str(file_path), rules)


@dataclass
class LintReport:
    """Outcome of linting a set of paths."""

    findings: list[Finding]
    #: Files that could not be linted ("path: reason") — unreadable or
    #: syntactically invalid.  Any entry makes the run a hard failure.
    errors: list[str]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_dict(self) -> dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "errors": list(self.errors),
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _python_files(paths: Iterable[str | Path]) -> tuple[list[Path], list[str]]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    errors: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            errors.append(f"{path}: no such file or directory")
    return files, errors


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[type[Rule]] | None = None,
) -> LintReport:
    """Lint files and/or directory trees; the CLI's workhorse."""
    files, errors = _python_files(paths)
    findings: list[Finding] = []
    for file_path in files:
        try:
            findings.extend(lint_file(file_path, rules))
        except SyntaxError as exc:
            errors.append(f"{file_path}: {exc.msg} (line {exc.lineno})")
        except OSError as exc:
            errors.append(f"{file_path}: {exc.strerror or exc}")
    return LintReport(
        findings=sorted(findings, key=lambda finding: finding.sort_key),
        errors=errors,
        files_checked=len(files),
    )
