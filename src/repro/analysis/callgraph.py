"""Whole-program module/class/call-graph index for the deep analyzer.

The per-statement linter (:mod:`repro.analysis.rules`) sees one AST at
a time; the dataflow pass (:mod:`repro.analysis.dataflow`) needs to
follow a value through ``helper()`` calls into other modules.  This
module provides the name-resolution substrate for that:

* :func:`module_qname` — map a file path to its dotted module name by
  walking up through ``__init__.py`` packages.
* :func:`import_map` — per-module mapping of local names to the
  qualified names they were imported as (handles ``import a.b``,
  ``from a import b as c``, and relative imports).
* :class:`ProgramIndex` — the union of every analyzed module: which
  qualified names are functions, which are classes (and their base
  classes), and :meth:`ProgramIndex.resolve_call`, which turns a call
  expression's dotted name as written (``helper``, ``mod.helper``,
  ``self.method``, ``ClassName``) into candidate function qnames.

Resolution is deliberately *syntactic*: there is no type inference, so
a call through an arbitrary object (``cache.put(...)``) resolves to
nothing and the dataflow pass falls back to its conservative
assumption (tainted arguments taint the return value) plus the
name/receiver-based sink table in :mod:`repro.analysis.taint_rules`.
``self.method()`` and ``ClassName(...)`` calls *are* resolved, walking
syntactic base classes, which is what the repo's helper-and-wrapper
style actually needs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


def module_qname(path: str | Path) -> str:
    """Dotted module name of ``path``, derived from package structure.

    Walks parent directories for as long as they contain an
    ``__init__.py``; a file outside any package is just its stem.
    """
    file_path = Path(path).resolve()
    if file_path.name == "__init__.py":
        parts: list[str] = []
        parent = file_path.parent
    else:
        parts = [file_path.stem]
        parent = file_path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:  # filesystem root
            break
        parent = parent.parent
    return ".".join(parts) if parts else file_path.stem


def import_map(tree: ast.Module, qname: str) -> dict[str, str]:
    """Map each imported local name to the qualified name it denotes.

    ``import a.b.c`` binds ``a`` -> ``a`` (attribute access spells the
    rest), ``import a.b.c as x`` binds ``x`` -> ``a.b.c``, and
    ``from a.b import c as d`` binds ``d`` -> ``a.b.c``.  Relative
    imports are resolved against ``qname``'s package.
    """
    mapping: dict[str, str] = {}
    package_parts = qname.split(".")[:-1] if qname else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    mapping[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: climb level-1 packages above ours.
                base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{base}.{alias.name}" if base else alias.name
    return mapping


@dataclass
class ClassInfo:
    """One class definition: its methods and syntactic base classes."""

    qname: str
    bases: tuple[str, ...] = ()  # resolved-to-qname where possible
    methods: frozenset[str] = frozenset()


@dataclass
class ModuleInfo:
    """Name-resolution facts for one module (cache-serializable)."""

    qname: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)
    #: Top-level function names defined in the module.
    functions: frozenset[str] = frozenset()
    #: Class name -> ClassInfo for classes defined in the module.
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "qname": self.qname,
            "path": self.path,
            "imports": dict(self.imports),
            "functions": sorted(self.functions),
            "classes": {
                name: {
                    "qname": info.qname,
                    "bases": list(info.bases),
                    "methods": sorted(info.methods),
                }
                for name, info in self.classes.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ModuleInfo":
        classes = {
            name: ClassInfo(
                qname=str(raw["qname"]),
                bases=tuple(raw["bases"]),
                methods=frozenset(raw["methods"]),
            )
            for name, raw in dict(doc.get("classes", {})).items()
        }
        return cls(
            qname=str(doc["qname"]),
            path=str(doc["path"]),
            imports=dict(doc.get("imports", {})),
            functions=frozenset(doc.get("functions", ())),
            classes=classes,
        )


def index_module(tree: ast.Module, path: str | Path) -> ModuleInfo:
    """Build the :class:`ModuleInfo` for one parsed module."""
    qname = module_qname(path)
    imports = import_map(tree, qname)
    functions: set[str] = set()
    classes: dict[str, ClassInfo] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.add(node.name)
        elif isinstance(node, ast.ClassDef):
            methods = frozenset(
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            bases: list[str] = []
            for base in node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                head, _, rest = dotted.partition(".")
                resolved = imports.get(head)
                if resolved is not None:
                    dotted = f"{resolved}.{rest}" if rest else resolved
                elif "." not in dotted:
                    # Same-module base class.
                    dotted = f"{qname}.{dotted}"
                bases.append(dotted)
            classes[node.name] = ClassInfo(
                qname=f"{qname}.{node.name}",
                bases=tuple(bases),
                methods=methods,
            )
    return ModuleInfo(
        qname=qname,
        path=str(path),
        imports=imports,
        functions=frozenset(functions),
        classes=classes,
    )


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class ProgramIndex:
    """The union of every analyzed module's name-resolution facts."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: set[str] = set()
        for info in modules:
            self.modules[info.qname] = info
            for name in info.functions:
                self.functions.add(f"{info.qname}.{name}")
            for class_info in info.classes.values():
                self.classes[class_info.qname] = class_info
                for method in class_info.methods:
                    self.functions.add(f"{class_info.qname}.{method}")

    # ------------------------------------------------------------------

    def lookup_method(self, class_qname: str, method: str) -> str | None:
        """Find ``method`` on ``class_qname`` or a syntactic base class."""
        seen: set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return f"{current}.{method}"
            queue.extend(info.bases)
        return None

    def resolve_call(
        self,
        name: str,
        module: ModuleInfo,
        class_qname: str | None = None,
    ) -> tuple[str, ...]:
        """Candidate function qnames for a call spelled ``name``.

        Returns an empty tuple when the callee cannot be identified
        syntactically (a call through an arbitrary object); the
        dataflow pass then applies its conservative fallback.
        Constructor calls resolve to ``Class.__init__`` when defined,
        else to the bare class qname (still useful as a sink anchor).
        """
        parts = name.split(".")
        head = parts[0]
        if head in ("self", "cls") and class_qname is not None:
            if len(parts) == 2:
                resolved = self.lookup_method(class_qname, parts[1])
                return (resolved,) if resolved else ()
            return ()
        # Resolve the head through local definitions, then imports.
        if head in module.functions and len(parts) == 1:
            return (f"{module.qname}.{head}",)
        if head in module.classes:
            qualified = [module.classes[head].qname, *parts[1:]]
        elif head in module.imports:
            qualified = [module.imports[head], *parts[1:]]
        elif len(parts) == 1:
            return ()
        else:
            qualified = parts
        dotted = ".".join(qualified)
        if dotted in self.functions:
            return (dotted,)
        if dotted in self.classes:
            init = self.lookup_method(dotted, "__init__")
            return (init,) if init else (dotted,)
        # ``module_alias.func`` where the alias maps to a module qname.
        target_module = self.modules.get(".".join(qualified[:-1]))
        if target_module is not None:
            simple = qualified[-1]
            if simple in target_module.functions:
                return (f"{target_module.qname}.{simple}",)
            if simple in target_module.classes:
                class_qname_full = target_module.classes[simple].qname
                init = self.lookup_method(class_qname_full, "__init__")
                return (init,) if init else (class_qname_full,)
        # ``Class.method`` through an import of the class.
        if len(qualified) >= 2:
            class_part = ".".join(qualified[:-1])
            if class_part in self.classes:
                resolved = self.lookup_method(class_part, qualified[-1])
                return (resolved,) if resolved else ()
        return ()


__all__ = [
    "ClassInfo",
    "ModuleInfo",
    "ProgramIndex",
    "import_map",
    "index_module",
    "module_qname",
]
