"""SARIF 2.1.0 output for ``repro lint`` (shallow and deep).

SARIF (Static Analysis Results Interchange Format) is what code
hosts and CI systems ingest to annotate diffs with findings.  One
:func:`to_sarif` call turns a lint report into a single-run SARIF log:

* every rule that *can* fire (DET, TNT, FS families) appears in the
  tool's rule catalog, so viewers can show descriptions for rules with
  zero results;
* each finding becomes a ``result`` with its physical location, its
  baseline fingerprint under ``partialFingerprints`` (the same
  fingerprint :mod:`repro.analysis.baseline` uses, so SARIF-side
  dedup agrees with the local ratchet);
* deep findings carry their source→sink path as a ``codeFlow`` —
  one thread flow location per step — which SARIF viewers render as a
  clickable taint trace.

The emitted document is plain data; tests validate it against the
published SARIF 2.1.0 JSON schema when :mod:`jsonschema` is present.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.fs_rules import FS_RULES
from repro.analysis.linter import (
    Finding,
    Severity,
    UNUSED_PRAGMA_CODE,
    UNUSED_PRAGMA_SUMMARY,
    all_rules,
)
from repro.analysis.taint_rules import TNT_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def rule_catalog() -> list[dict]:
    """Every rule the linter can emit, as SARIF reportingDescriptors."""
    rules: list[dict[str, object]] = []

    def add(code: str, summary: str, severity: Severity) -> None:
        rules.append(
            {
                "id": code,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": _LEVELS[severity]},
            }
        )

    add(UNUSED_PRAGMA_CODE, UNUSED_PRAGMA_SUMMARY, Severity.WARNING)
    for rule_cls in all_rules():
        add(rule_cls.code, rule_cls.summary, rule_cls.severity)
    for code, (summary, severity) in sorted(TNT_RULES.items()):
        add(code, summary, severity)
    for code, (summary, severity) in sorted(FS_RULES.items()):
        add(code, summary, severity)
    return rules


def _location(path: str, line: int, col: int, text: str | None = None) -> dict:
    location: dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": line, "startColumn": max(col, 1)},
        }
    }
    if text:
        location["message"] = {"text": text}
    return location


def _result(finding: Finding) -> dict:
    result: dict[str, object] = {
        "ruleId": finding.code,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }
    if finding.trace:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": _location(path, line, 1, text),
                            }
                            for path, line, text in finding.trace
                        ]
                    }
                ]
            }
        ]
    return result


def to_sarif(
    findings: Iterable[Finding], tool_version: str = "1.0.0"
) -> dict:
    """One complete SARIF 2.1.0 log document for ``findings``."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis.md"
                        ),
                        "version": tool_version,
                        "rules": rule_catalog(),
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "rule_catalog", "to_sarif"]
