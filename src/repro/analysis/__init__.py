"""Correctness tooling for the simulator: static + runtime checking.

Two complementary layers guard the property every cached result and
published figure depends on — that a given configuration always
reproduces the same run, and that the run obeyed the DRAM protocol:

* :mod:`repro.analysis.linter` — an AST-based **determinism linter**
  (``repro lint``) that flags nondeterminism hazards before they enter
  the tree: raw :mod:`random` use, wall-clock reads in simulation
  code, iteration over unordered containers feeding ordering-sensitive
  logic, module-level mutable state, heap pushes without deterministic
  tiebreakers, unsorted directory listings, float accumulation over
  sets, and ``id()``-derived keys.  Findings are suppressed per line
  with ``# repro: allow(DETxxx)`` pragmas.

* :mod:`repro.analysis.sanitizer` — an opt-in runtime **SimSanitizer**
  that wraps the event queue and both DRAM controller models during a
  run and checks protocol / accounting invariants (tRCD/tRP/tRAS/tRRD
  command ordering, data-bus burst overlap, MSHR allocate/release
  balance, ROB capacity, monotonic event time).  Enable with the
  ``--sanitize`` CLI flag, ``REPRO_SANITIZE=1``, or the ``sanitizer``
  pytest fixture; observation never perturbs the simulation, so a
  sanitized run is bit-identical to a plain one.

See ``docs/static-analysis.md`` for the rule catalog and invariant
reference.
"""

from repro.analysis.linter import (
    Finding,
    LintReport,
    Rule,
    Severity,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import (
    SanitizerError,
    SimSanitizer,
    Violation,
)

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "SanitizerError",
    "SimSanitizer",
    "Violation",
]
