"""``repro lint`` — the determinism linter's command-line front end.

Registered as a subcommand of the main experiment CLI
(``python -m repro lint src/``).  Exit codes follow the usual linter
convention so CI can gate on them:

* ``0`` — no unsuppressed findings,
* ``1`` — at least one finding,
* ``2`` — operational failure (missing path, unparseable file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Sequence

from repro.analysis.linter import LintReport, all_rules, lint_paths


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directory trees to lint",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (json is machine-readable, one document)",
    )
    parser.add_argument(
        "--select", nargs="+", default=None, metavar="CODE",
        help="only run these rule codes (e.g. DET001 DET004)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _print_rules(out: IO[str]) -> None:
    for rule in all_rules():
        out.write(f"{rule.code} [{rule.severity.value}] {rule.summary}\n")


def _render_human(report: LintReport, out: IO[str]) -> None:
    for finding in report.findings:
        out.write(finding.render() + "\n")
    for error in report.errors:
        out.write(f"error: {error}\n")
    noun = "file" if report.files_checked == 1 else "files"
    out.write(
        f"{len(report.findings)} finding(s), {len(report.errors)} error(s) "
        f"in {report.files_checked} {noun}\n"
    )


def run_lint(
    args: argparse.Namespace, out: IO[str] | None = None
) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    stream: IO[str] = out if out is not None else sys.stdout
    if args.list_rules:
        _print_rules(stream)
        return 0
    if not args.paths:
        stream.write("error: no paths given (try 'repro lint src/')\n")
        return 2
    rules = all_rules()
    if args.select:
        wanted = set(args.select)
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            stream.write(
                f"error: unknown rule code(s): {', '.join(sorted(unknown))}\n"
            )
            return 2
        rules = [rule for rule in rules if rule.code in wanted]
    report = lint_paths(args.paths, rules)
    if args.format == "json":
        json.dump(report.to_dict(), stream, indent=2, sort_keys=True)
        stream.write("\n")
    else:
        _render_human(report, stream)
    if report.errors:
        return 2
    return 1 if report.findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint", description="determinism linter for repro"
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
