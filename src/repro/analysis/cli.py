"""``repro lint`` — the determinism linter's command-line front end.

Registered as a subcommand of the main experiment CLI
(``python -m repro lint src/``).  Two depths share one interface:

* the default **shallow** run — per-line DET rules, one file at a
  time;
* ``--deep`` — the whole-program taint + filesystem-atomicity
  analysis (:mod:`repro.analysis.dataflow`): TNT source→sink findings
  with traces, FS write-discipline findings, and the DET rules, all in
  one pass.  ``--cache-dir`` keeps per-file summaries between runs so
  warm invocations skip parsing; ``--baseline`` ratchets accepted
  findings (see :mod:`repro.analysis.baseline`).

Exit codes follow the usual linter convention at *both* depths so CI
can gate on them:

* ``0`` — no unsuppressed, non-baselined findings,
* ``1`` — at least one finding,
* ``2`` — operational failure (missing path, unparseable file, bad
  baseline, unknown rule).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.dataflow import DeepReport, SummaryCache, analyze_paths
from repro.analysis.fs_rules import FS_RULES
from repro.analysis.linter import LintReport, all_rules, lint_paths
from repro.analysis.sarif import to_sarif
from repro.analysis.taint_rules import TNT_RULES


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directory trees to lint",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="run the whole-program taint + filesystem analysis "
        "(TNT/FS rules) in addition to the per-line DET rules",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human",
        help="output format (json/sarif are machine-readable documents)",
    )
    parser.add_argument(
        "--select", nargs="+", default=None, metavar="CODE",
        help="only run these rule codes (e.g. DET001 DET004; shallow only)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppress findings recorded in this baseline file "
        f"(default with --deep: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept exactly the current "
        "findings, then exit 0",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="directory for per-file summary caching (--deep only); "
        "warm runs skip parsing unchanged files",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _print_rules(out: IO[str]) -> None:
    for rule in all_rules():
        out.write(f"{rule.code} [{rule.severity.value}] {rule.summary}\n")
    for code, (summary, severity) in sorted(TNT_RULES.items()):
        out.write(f"{code} [{severity.value}] {summary} (--deep)\n")
    for code, (summary, severity) in sorted(FS_RULES.items()):
        out.write(f"{code} [{severity.value}] {summary} (--deep)\n")


def _render_human(
    report: LintReport | DeepReport,
    out: IO[str],
    suppressed: int = 0,
    stale: Sequence[str] = (),
) -> None:
    for finding in report.findings:
        out.write(finding.render() + "\n")
        for line in finding.render_trace():
            out.write(line + "\n")
    for error in report.errors:
        out.write(f"error: {error}\n")
    noun = "file" if report.files_checked == 1 else "files"
    tail = ""
    if suppressed:
        tail = f", {suppressed} baselined"
    out.write(
        f"{len(report.findings)} finding(s), {len(report.errors)} error(s) "
        f"in {report.files_checked} {noun}{tail}\n"
    )
    if stale:
        out.write(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (finding fixed; run "
            "--update-baseline to drop): "
            + ", ".join(stale)
            + "\n"
        )


def _emit(
    report: LintReport | DeepReport,
    args: argparse.Namespace,
    stream: IO[str],
    suppressed: int = 0,
    stale: Sequence[str] = (),
) -> None:
    if args.format == "json":
        doc = report.to_dict()
        if suppressed or stale:
            doc["baseline"] = {
                "suppressed": suppressed,
                "stale": list(stale),
            }
        json.dump(doc, stream, indent=2, sort_keys=True)
        stream.write("\n")
    elif args.format == "sarif":
        json.dump(
            to_sarif(report.findings), stream, indent=2, sort_keys=True
        )
        stream.write("\n")
    else:
        _render_human(report, stream, suppressed, stale)


def run_lint(
    args: argparse.Namespace, out: IO[str] | None = None
) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    stream: IO[str] = out if out is not None else sys.stdout
    if args.list_rules:
        _print_rules(stream)
        return 0
    if not args.paths:
        stream.write("error: no paths given (try 'repro lint src/')\n")
        return 2
    if args.select and args.deep:
        stream.write("error: --select applies to shallow runs only\n")
        return 2

    if args.deep:
        cache = (
            SummaryCache(args.cache_dir) if args.cache_dir is not None else None
        )
        report: LintReport | DeepReport = analyze_paths(args.paths, cache=cache)
    else:
        rules = all_rules()
        if args.select:
            wanted = set(args.select)
            unknown = wanted - {rule.code for rule in rules}
            if unknown:
                stream.write(
                    "error: unknown rule code(s): "
                    f"{', '.join(sorted(unknown))}\n"
                )
                return 2
            rules = [rule for rule in rules if rule.code in wanted]
        report = lint_paths(args.paths, rules)

    # Baseline: explicit path wins; --deep defaults to the committed
    # ratchet file when present (shallow runs never guess — their
    # findings are expected to be pragma-clean).
    baseline_path = args.baseline
    if baseline_path is None and args.deep:
        if Path(DEFAULT_BASELINE).is_file():
            baseline_path = DEFAULT_BASELINE

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        count = write_baseline(target, report.findings)
        stream.write(
            f"baseline: wrote {count} fingerprint(s) to {target}\n"
        )
        return 0 if not report.errors else 2

    suppressed = 0
    stale: list[str] = []
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            stream.write(f"error: {exc}\n")
            return 2
        new_findings, suppressed, stale = apply_baseline(
            report.findings, baseline
        )
        report.findings = new_findings

    _emit(report, args, stream, suppressed, stale)
    if report.errors:
        return 2
    return 1 if report.findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint", description="determinism linter for repro"
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
