"""Determinism taint model: sources, sanitizers, and TNT sinks.

The dataflow pass (:mod:`repro.analysis.dataflow`) tracks values from
*nondeterminism sources* to *determinism sinks* — places whose inputs
must be a pure function of the simulation configuration because they
feed cache keys, content-addressed store entries, journals, manifests,
or HTTP response bodies.  This module is the catalog both ends consult:

* :data:`SOURCES` / :func:`match_source` — calls that mint a
  nondeterministic value (wall clock, raw RNG, pids, ``id()``,
  environment reads, unsorted filesystem listings).  Iteration over a
  set expression is handled structurally by the extractor and tagged
  with the ``set-order`` kind.
* :data:`ORDER_KINDS` / :data:`SANITIZERS` — *order*-nondeterminism
  (listing order, set order) is laundered by ``sorted()`` and by
  order-insensitive reductions (``len``/``min``/``max``); value
  nondeterminism (a timestamp) survives any amount of sorting, so
  sanitizers only clear the order kinds.
* :data:`SINKS` / :func:`match_sink` — calls whose arguments become
  part of a deterministic contract.  Sinks are matched by callable
  name plus a receiver/class hint (there is no type inference), e.g.
  ``put`` only counts when called on something whose spelling — or
  whose enclosing class — mentions a cache or store.

Unlike the per-line DET rules, a TNT finding carries the whole
source→sink path, so codes are per *sink family*: the same wall-clock
read is TNT001 when it reaches a cache key and TNT003 when it reaches
a journal record.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.linter import Severity

# ---------------------------------------------------------------------------
# sources

#: Taint kinds whose hazard is *ordering*, not the value itself; these
#: are cleared by sanitizers, value kinds are not.
ORDER_KINDS = frozenset({"fs-order", "set-order"})

#: Dotted call name -> taint kind for exact matches.
_SOURCE_CALLS: dict[str, str] = {
    "time.time": "wall-clock",
    "time.time_ns": "wall-clock",
    "time.monotonic": "wall-clock",
    "time.monotonic_ns": "wall-clock",
    "datetime.now": "wall-clock",
    "datetime.utcnow": "wall-clock",
    "datetime.today": "wall-clock",
    "datetime.datetime.now": "wall-clock",
    "datetime.datetime.utcnow": "wall-clock",
    "datetime.datetime.today": "wall-clock",
    "datetime.date.today": "wall-clock",
    "date.today": "wall-clock",
    "os.getpid": "process-id",
    "os.getppid": "process-id",
    "threading.get_ident": "process-id",
    "uuid.uuid1": "uuid",
    "uuid.uuid4": "uuid",
    "os.getenv": "environment",
    "os.environ.get": "environment",
    "os.environb.get": "environment",
    "os.listdir": "fs-order",
    "os.scandir": "fs-order",
    "glob.glob": "fs-order",
    "glob.iglob": "fs-order",
    "id": "memory-address",
}

#: Method names that yield filesystem-ordered listings on any receiver.
_LISTING_METHODS = frozenset({"glob", "iglob", "rglob", "iterdir"})

#: ``random.*`` prefix (module-level RNG) and ``secrets.*``.
_SOURCE_PREFIXES: tuple[tuple[str, str], ...] = (
    ("random.", "raw-rng"),
    ("secrets.", "raw-rng"),
)


def match_source(dotted: str | None) -> str | None:
    """Taint kind minted by a call to ``dotted``, or None."""
    if dotted is None:
        return None
    kind = _SOURCE_CALLS.get(dotted)
    if kind is not None:
        return kind
    for prefix, prefix_kind in _SOURCE_PREFIXES:
        if dotted.startswith(prefix):
            return prefix_kind
    simple = dotted.rsplit(".", 1)[-1]
    if simple in _LISTING_METHODS and "." in dotted:
        return "fs-order"
    return None


#: Calls through which ORDER_KINDS taint does not propagate: sorting
#: fixes the order, counting/extrema ignore it.  Value kinds pass
#: through untouched (``sorted([time.time()])`` is still wall-clock).
SANITIZERS = frozenset({"sorted", "len", "min", "max"})

# ---------------------------------------------------------------------------
# sinks


@dataclass(frozen=True)
class Sink:
    """One determinism sink: a callable whose arguments must be pure.

    ``name`` is the call's last dotted component; ``hints`` are
    lowercase substrings, at least one of which must appear in the
    receiver expression *or* the enclosing class name (empty hints
    match any receiver — used for globally unambiguous names like
    ``SystemConfig``).
    """

    code: str
    name: str
    hints: tuple[str, ...]
    what: str  # human description of the sink family


#: TNT rule codes -> (summary, severity of value-kind findings).
TNT_RULES: dict[str, tuple[str, Severity]] = {
    "TNT001": (
        "nondeterministic value flows into a cache key / run identity",
        Severity.ERROR,
    ),
    "TNT002": (
        "nondeterministic value flows into a cache/store payload",
        Severity.ERROR,
    ),
    "TNT003": (
        "nondeterministic value flows into a batch-journal record",
        Severity.ERROR,
    ),
    "TNT004": (
        "nondeterministic value flows into a run manifest record",
        Severity.WARNING,
    ),
    "TNT005": (
        "nondeterministic value flows into an HTTP response body",
        Severity.WARNING,
    ),
}

SINKS: tuple[Sink, ...] = (
    # TNT001 — run identity: SystemConfig fields feed cache_key(),
    # which feeds ResultCache paths, ResultStore addresses, run_ids,
    # and manifest filenames.
    Sink("TNT001", "SystemConfig", (), "SystemConfig construction"),
    Sink("TNT001", "table1", ("config", "systemconfig"), "SystemConfig.table1"),
    Sink("TNT001", "with_", ("config", "cfg", "systemconfig"), "SystemConfig.with_"),
    Sink("TNT001", "cache_key", (), "cache-key computation"),
    Sink("TNT001", "config_hash", (), "config hash"),
    Sink("TNT001", "run_id", (), "run identity"),
    Sink("TNT001", "path_for", ("cache", "store"), "cache entry path"),
    Sink("TNT001", "key_for", ("cache", "store"), "store key"),
    Sink("TNT001", "path_for_key", ("cache", "store"), "store entry path"),
    # TNT002 — durable payloads in the result cache / content store.
    Sink("TNT002", "put", ("cache", "store"), "cache/store payload"),
    Sink("TNT002", "publish", ("cache", "store"), "store publish"),
    Sink("TNT002", "publish_path", (), "atomic publish payload"),
    # TNT003 — crash-safe journal lines (replayed on --resume).
    Sink("TNT003", "record_complete", ("journal",), "journal complete record"),
    Sink("TNT003", "record_failure", ("journal",), "journal failure record"),
    Sink("TNT003", "_write_line", ("journal",), "journal line"),
    # TNT004 — provenance records served by the result API.
    Sink("TNT004", "RunRecord", (), "run record"),
    Sink("TNT004", "RunManifest", (), "run manifest"),
    Sink("TNT004", "from_run", ("runrecord", "record"), "run record"),
    # TNT005 — bytes written to an HTTP client.
    Sink("TNT005", "write", ("wfile",), "HTTP response body"),
    Sink("TNT005", "_respond", ("self", "handler"), "HTTP response body"),
)

#: name -> sinks sharing it (built once; lookups are hot).
_SINKS_BY_NAME: dict[str, tuple[Sink, ...]] = {}
for _sink in SINKS:
    _SINKS_BY_NAME[_sink.name] = _SINKS_BY_NAME.get(_sink.name, ()) + (_sink,)


def match_sink(
    dotted: str, receiver: str, class_name: str | None
) -> Sink | None:
    """The sink a call to ``dotted`` hits, if any.

    ``receiver`` is the unparsed expression the method was called on
    (empty for plain calls); ``class_name`` is the enclosing class of
    the *calling* function, which lets ``self._write_line(...)`` inside
    ``BatchJournal`` match the ``journal`` hint.
    """
    simple = dotted.rsplit(".", 1)[-1]
    candidates = _SINKS_BY_NAME.get(simple)
    if not candidates:
        return None
    context = f"{receiver} {class_name or ''}".lower()
    for sink in candidates:
        if not sink.hints:
            return sink
        if any(hint in context for hint in sink.hints):
            return sink
    return None


def severity_for(code: str, kind: str) -> Severity:
    """Finding severity: order-kind taints are heuristic warnings."""
    base = TNT_RULES[code][1]
    if kind in ORDER_KINDS:
        return Severity.WARNING
    return base


__all__ = [
    "ORDER_KINDS",
    "SANITIZERS",
    "SINKS",
    "Sink",
    "TNT_RULES",
    "match_sink",
    "match_source",
    "severity_for",
]
