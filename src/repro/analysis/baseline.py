"""Committed-baseline workflow for lint findings.

Adopting a new rule family on a living codebase needs a ratchet: the
tree may carry known, triaged findings that should not fail CI while
*new* ones must.  The baseline file (``.repro-lint-baseline.json``,
committed) records the :attr:`~repro.analysis.linter.Finding.fingerprint`
of every accepted finding; a lint run then reports only findings whose
fingerprint is absent.

Fingerprints hash the rule code, file path, enclosing-function anchor,
and digit-normalized message — not line numbers — so unrelated edits
that shift a finding do not invalidate the baseline, while moving the
code to another file or function (a genuine change of identity) does.

The intended ratchet direction is *down*: fix a finding and
``repro lint --deep --update-baseline`` removes its entry; entries
whose finding no longer exists anywhere are reported as stale so the
file cannot quietly accumulate dead weight.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.linter import Finding

#: Conventional baseline location, relative to the repo root.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_SCHEMA = "repro-lint-baseline/1"


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: str | Path) -> dict[str, dict]:
    """Fingerprint -> context entries from a baseline file.

    A missing file is an empty baseline (the common fresh-repo case);
    a malformed one raises :class:`BaselineError` — silently ignoring
    a corrupt ratchet would fail open.
    """
    file_path = Path(path)
    try:
        with open(file_path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        return {}
    except ValueError as exc:
        raise BaselineError(f"{file_path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict) or doc.get("schema") != _SCHEMA:
        raise BaselineError(
            f"{file_path}: expected schema {_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    fingerprints = doc.get("fingerprints")
    if not isinstance(fingerprints, dict):
        raise BaselineError(f"{file_path}: missing 'fingerprints' object")
    return {str(k): dict(v) for k, v in fingerprints.items()}


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write the baseline accepting exactly ``findings``; return count.

    Output is sorted and the write staged + atomically replaced, so
    regenerating an unchanged baseline is byte-identical (no diff
    churn) and a crash cannot leave a half-written ratchet.
    """
    file_path = Path(path)
    entries = {
        finding.fingerprint: {
            "code": finding.code,
            "path": finding.path,
            "anchor": finding.anchor,
            "message": finding.message,
        }
        for finding in findings
    }
    doc = {"schema": _SCHEMA, "fingerprints": entries}
    tmp = file_path.with_name(f"{file_path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, file_path)
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], baseline: dict[str, dict]
) -> tuple[list[Finding], int, list[str]]:
    """Split findings against a baseline.

    Returns ``(new, suppressed_count, stale_fingerprints)`` where
    ``new`` are findings not in the baseline (these fail the run),
    ``suppressed_count`` is how many were ratcheted away, and
    ``stale_fingerprints`` are baseline entries matching nothing — the
    finding was fixed and the entry should be dropped via
    ``--update-baseline``.
    """
    new: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint
        if fingerprint in baseline:
            seen.add(fingerprint)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - seen)
    return new, len(seen), stale


__all__ = [
    "DEFAULT_BASELINE",
    "BaselineError",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
