"""Interprocedural determinism taint analysis (``repro lint --deep``).

The per-line DET rules catch a ``time.time()`` *call*; they cannot see
that its value, three assignments and two helper calls later, lands in
a ``SystemConfig`` seed — poisoning a cache key that a content-
addressed store then serves forever.  This module follows the value.

Architecture (two phases, the first cacheable per file):

1. **Extraction** (:func:`extract_module`) — parse one file and build a
   :class:`ModuleSummary`: the module's name-resolution facts
   (:mod:`repro.analysis.callgraph`), its pre-suppression per-line
   findings (DET rules via :func:`~repro.analysis.linter.lint_source_raw`
   and FS rules via :mod:`repro.analysis.fs_rules`), and — the heart —
   one :class:`FnSummary` per function: every call site, plus *taint
   edges* recording how values flow between nondeterminism sources
   (:mod:`repro.analysis.taint_rules`), parameters, call results,
   ``self`` attributes, sinks, and the return value.  Summaries are
   plain data, serialized to JSON by :class:`SummaryCache` keyed on the
   file's content hash, so warm runs skip parsing entirely.
2. **Solving** (:class:`Program`) — resolve call names program-wide,
   then run a fixpoint over the summaries: which functions return
   tainted values, which parameters reach sinks (transitively), which
   class attributes carry taint across methods.  Every source→sink
   path becomes a :class:`~repro.analysis.linter.Finding` anchored at
   the *source* (where the nondeterminism is born — that is where the
   fix goes) whose ``trace`` walks assignment-by-assignment, call-by-
   call to the sink.

The analysis is deliberately conservative where it cannot resolve a
callee (no type inference): an unresolved call with a tainted argument
is assumed to return taint.  It is *not* sound — implicit flows
through branches, container element tracking, and closure captures are
out of scope — but it is exactly sharp enough to catch the two bug
shapes this repo has actually shipped (a process-global counter
leaking into run behaviour; wall-clock values reaching durable
records), which is the bar a reviewer-time tool has to clear.

Suppression: a deep finding honors ``# repro: allow(TNTxxx)`` pragmas
on *either* end of the flow — the source line or the sink line — since
the legitimate party differs case by case.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import fs_rules
from repro.analysis.callgraph import (
    ModuleInfo,
    ProgramIndex,
    index_module,
)
from repro.analysis.fs_rules import FS_RULES
from repro.analysis.linter import (
    Finding,
    _python_files,
    apply_pragmas,
    all_rules,
    lint_source_raw,
    pragmas_for_source,
)
from repro.analysis.taint_rules import (
    ORDER_KINDS,
    SANITIZERS,
    TNT_RULES,
    match_sink,
    match_source,
    severity_for,
)

#: Bump to invalidate every cached module summary (rule or format change).
ANALYZER_VERSION = 1

#: Caps keeping pathological files from blowing up the edge lists.
_MAX_ATOMS_PER_NAME = 6
_MAX_STEPS = 8
_MAX_SINK_PATHS = 3

# Atom shapes (hashable tuples):
#   ("src", kind, detail, line)   a concrete nondeterminism source
#   ("par", index)                the function's parameter
#   ("call", callsite_index)      the result of a call
#   ("attr", "mod.Class.attr")    a self-attribute of the class
Atom = tuple
Steps = tuple[tuple[int, str], ...]


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _short(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


# ---------------------------------------------------------------------------
# summaries


@dataclass
class CallSiteRec:
    """One call expression inside a function."""

    index: int
    name: str  # dotted, as written
    line: int
    col: int
    is_attr: bool  # spelled with a receiver (``x.f(...)``)
    sink: str | None = None  # TNT code when the call is a sink
    sink_detail: str = ""

    def to_list(self) -> list:
        return [
            self.index, self.name, self.line, self.col,
            int(self.is_attr), self.sink, self.sink_detail,
        ]

    @classmethod
    def from_list(cls, raw: list) -> "CallSiteRec":
        return cls(
            index=int(raw[0]), name=str(raw[1]), line=int(raw[2]),
            col=int(raw[3]), is_attr=bool(raw[4]),
            sink=raw[5], sink_detail=str(raw[6]),
        )


@dataclass
class FnSummary:
    """Dataflow facts for one function (JSON-serializable)."""

    qname: str
    class_qname: str | None
    class_name: str | None
    params: list[str]
    line: int
    calls: list[CallSiteRec] = field(default_factory=list)
    #: edge-kind -> list of edges; see module docstring for shapes.
    edges: dict[str, list] = field(default_factory=dict)

    def edge(self, kind: str, *payload) -> None:
        self.edges.setdefault(kind, []).append(list(payload))

    def to_dict(self) -> dict:
        return {
            "qname": self.qname,
            "class_qname": self.class_qname,
            "class_name": self.class_name,
            "params": list(self.params),
            "line": self.line,
            "calls": [c.to_list() for c in self.calls],
            "edges": {k: v for k, v in self.edges.items()},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FnSummary":
        return cls(
            qname=str(doc["qname"]),
            class_qname=doc.get("class_qname"),
            class_name=doc.get("class_name"),
            params=list(doc.get("params", ())),
            line=int(doc.get("line", 1)),
            calls=[CallSiteRec.from_list(c) for c in doc.get("calls", ())],
            edges={k: list(v) for k, v in doc.get("edges", {}).items()},
        )


@dataclass
class ModuleSummary:
    """Everything the solver needs to know about one file."""

    path: str
    digest: str
    info: ModuleInfo
    functions: list[FnSummary] = field(default_factory=list)
    #: Pre-suppression per-line findings (DET + FS) for this file.
    local_findings: list[Finding] = field(default_factory=list)
    #: line -> codes allowed by pragmas on that line.
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": ANALYZER_VERSION,
            "path": self.path,
            "digest": self.digest,
            "info": self.info.to_dict(),
            "functions": [f.to_dict() for f in self.functions],
            "local_findings": [f.to_dict() for f in self.local_findings],
            "pragmas": {
                str(line): sorted(codes)
                for line, codes in self.pragmas.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ModuleSummary":
        return cls(
            path=str(doc["path"]),
            digest=str(doc["digest"]),
            info=ModuleInfo.from_dict(doc["info"]),
            functions=[FnSummary.from_dict(f) for f in doc.get("functions", ())],
            local_findings=[
                Finding.from_dict(f) for f in doc.get("local_findings", ())
            ],
            pragmas={
                int(line): frozenset(codes)
                for line, codes in dict(doc.get("pragmas", {})).items()
            },
        )


# ---------------------------------------------------------------------------
# extraction


class _FunctionExtractor:
    """One pass over a function body building its :class:`FnSummary`."""

    def __init__(
        self,
        summary: FnSummary,
        module_qname: str,
        class_body: bool = False,
    ) -> None:
        self.s = summary
        self.module_qname = module_qname
        #: Extracting a class body: bare-name assignments define class
        #: attributes, not locals.
        self.class_body = class_body
        #: variable name -> {atom: steps}
        self.env: dict[str, dict[Atom, Steps]] = {
            name: {("par", i): ()} for i, name in enumerate(summary.params)
        }

    # -- helpers -------------------------------------------------------

    def _merge(
        self, into: dict[Atom, Steps], atoms: dict[Atom, Steps]
    ) -> dict[Atom, Steps]:
        for atom, steps in atoms.items():
            if atom not in into and len(into) < _MAX_ATOMS_PER_NAME:
                into[atom] = steps
        return into

    def _step(self, steps: Steps, line: int, text: str) -> Steps:
        if len(steps) >= _MAX_STEPS:
            return steps
        return steps + ((line, text),)

    def _emit_atom_edges(
        self,
        atoms: dict[Atom, Steps],
        target_kind: str,
        *target_payload,
        extra_step: tuple[int, str] | None = None,
    ) -> None:
        """Record ``atom -> target`` edges for every atom."""
        for atom, steps in atoms.items():
            if extra_step is not None:
                steps = self._step(steps, *extra_step)
            tag, *payload = atom
            # Edge keys: "<atomkind>_<targetkind>", e.g. "src_call".
            self.s.edge(
                f"{tag}_{target_kind}", list(payload), *target_payload,
                [list(s) for s in steps],
            )

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.AST | None) -> dict[Atom, Steps]:
        if node is None:
            return {}
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Generic: union of child expressions.
        atoms: dict[Atom, Steps] = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._merge(atoms, self.eval(child))
        return atoms

    def _eval_Name(self, node: ast.Name) -> dict[Atom, Steps]:
        return dict(self.env.get(node.id, {}))

    def _eval_Constant(self, node: ast.Constant) -> dict[Atom, Steps]:
        return {}

    def _eval_Lambda(self, node: ast.Lambda) -> dict[Atom, Steps]:
        return {}

    def _eval_Attribute(self, node: ast.Attribute) -> dict[Atom, Steps]:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.s.class_qname is not None
        ):
            local = dict(self.env.get(f"self.{node.attr}", {}))
            attr_key = f"{self.s.class_qname}.{node.attr}"
            local.setdefault(("attr", attr_key), ())
            return local
        return self.eval(node.value)

    def _eval_Subscript(self, node: ast.Subscript) -> dict[Atom, Steps]:
        container = _dotted(node.value)
        if container in ("os.environ", "os.environb"):
            return {
                ("src", "environment", f"{container}[...]", node.lineno): ()
            }
        atoms = self.eval(node.value)
        return self._merge(atoms, self.eval(node.slice))

    def _comprehension(self, node) -> dict[Atom, Steps]:
        saved = {}
        for gen in node.generators:
            iter_atoms = self.eval(gen.iter)
            if _is_set_expression(gen.iter):
                iter_atoms = dict(iter_atoms)
                iter_atoms[
                    ("src", "set-order", _short(gen.iter), gen.iter.lineno)
                ] = ()
            for name in self._target_names(gen.target):
                saved.setdefault(name, self.env.get(name))
                self.env[name] = dict(iter_atoms)
        if isinstance(node, ast.DictComp):
            atoms = self.eval(node.key)
            self._merge(atoms, self.eval(node.value))
        else:
            atoms = self.eval(node.elt)
        for name, old in saved.items():
            if old is None:
                self.env.pop(name, None)
            else:
                self.env[name] = old
        return atoms

    _eval_ListComp = _comprehension
    _eval_SetComp = _comprehension
    _eval_DictComp = _comprehension
    _eval_GeneratorExp = _comprehension

    def _eval_Call(self, node: ast.Call) -> dict[Atom, Steps]:
        dotted = _dotted(node.func)
        if dotted is None:
            # Call through a computed expression: evaluate children and
            # conservatively propagate argument taint to the result.
            atoms: dict[Atom, Steps] = {}
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._merge(atoms, self.eval(child))
            return atoms
        kind = match_source(dotted)
        if kind is not None:
            # Evaluate arguments anyway (they may contain calls), but
            # the result is a fresh source.
            for arg in node.args:
                self.eval(arg)
            return {("src", kind, f"{dotted}()", node.lineno): ()}
        if dotted in SANITIZERS:
            merged: dict[Atom, Steps] = {}
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                self._merge(merged, self.eval(arg))
            return {
                atom: steps
                for atom, steps in merged.items()
                if not (atom[0] == "src" and atom[1] in ORDER_KINDS)
            }
        receiver = ""
        receiver_atoms: dict[Atom, Steps] = {}
        if isinstance(node.func, ast.Attribute):
            receiver = _short(node.func.value, 40)
            receiver_atoms = self.eval(node.func.value)
        cs = CallSiteRec(
            index=len(self.s.calls),
            name=dotted,
            line=node.lineno,
            col=node.col_offset,
            is_attr=isinstance(node.func, ast.Attribute),
        )
        sink = match_sink(dotted, receiver, self.s.class_name)
        if sink is not None:
            cs.sink = sink.code
            cs.sink_detail = f"{sink.what} via {dotted}(...)"
        self.s.calls.append(cs)
        for position, arg in enumerate(node.args):
            value = arg.value if isinstance(arg, ast.Starred) else arg
            atoms = self.eval(value)
            self._emit_atom_edges(
                atoms, "call", cs.index, position,
                extra_step=(node.lineno, f"argument {position} of {dotted}(...)"),
            )
        for kw in node.keywords:
            atoms = self.eval(kw.value)
            # ``field(default_factory=time.time)`` passes a *reference*
            # to a source; the factory runs at instantiation, so the
            # call result is deferred-tainted.
            if kw.arg == "default_factory":
                deferred = _dotted(kw.value)
                deferred_kind = match_source(deferred)
                if deferred_kind is not None:
                    atoms = dict(atoms)
                    atoms[(
                        "src", deferred_kind,
                        f"{deferred} (deferred factory)", node.lineno,
                    )] = ()
            spec = kw.arg if kw.arg is not None else "**"
            self._emit_atom_edges(
                atoms, "call", cs.index, spec,
                extra_step=(
                    node.lineno,
                    f"argument {spec!r} of {dotted}(...)",
                ),
            )
        result: dict[Atom, Steps] = {("call", cs.index): ()}
        # A method called on a tainted object yields a tainted value
        # (``stamp_str.encode()``); harmless for untainted receivers.
        self._merge(result, receiver_atoms)
        return result

    # -- statements ----------------------------------------------------

    def _target_names(self, target: ast.AST) -> list[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: list[str] = []
            for element in target.elts:
                names.extend(self._target_names(element))
            return names
        return []

    def _assign_to(self, target: ast.AST, atoms: dict[Atom, Steps], line: int) -> None:
        if isinstance(target, ast.Name):
            if self.class_body and self.s.class_qname is not None:
                attr_key = f"{self.s.class_qname}.{target.id}"
                self._emit_atom_edges(
                    atoms, "attr", attr_key,
                    extra_step=(line, f"class attribute {target.id} = ..."),
                )
                return
            stamped = {
                atom: self._step(steps, line, f"{target.id} = ...")
                for atom, steps in atoms.items()
            }
            self.env[target.id] = stamped
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_to(element, atoms, line)
        elif isinstance(target, ast.Starred):
            self._assign_to(target.value, atoms, line)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.s.class_qname is not None
        ):
            attr_key = f"{self.s.class_qname}.{target.attr}"
            self._emit_atom_edges(
                atoms, "attr", attr_key,
                extra_step=(line, f"self.{target.attr} = ..."),
            )
            self.env[f"self.{target.attr}"] = dict(atoms)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(target)

    def exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            atoms = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign_to(target, atoms, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_to(stmt.target, self.eval(stmt.value), stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            atoms = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = dict(self.env.get(stmt.target.id, {}))
                self._merge(merged, atoms)
                self.env[stmt.target.id] = merged
            else:
                self._assign_to(stmt.target, atoms, stmt.lineno)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                atoms = self.eval(stmt.value)
                self._emit_atom_edges(
                    atoms, "ret",
                    extra_step=(stmt.lineno, f"return {_short(stmt.value)}"),
                )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_atoms = self.eval(stmt.iter)
            if _is_set_expression(stmt.iter):
                iter_atoms = dict(iter_atoms)
                iter_atoms[
                    ("src", "set-order", _short(stmt.iter), stmt.iter.lineno)
                ] = ()
            # Two passes approximate loop-carried taint.
            for _ in range(2):
                self._assign_to(stmt.target, iter_atoms, stmt.lineno)
                self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(2):
                self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                atoms = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_to(item.optional_vars, atoms, stmt.lineno)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = {}
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # Import/Global/Nonlocal/Pass/Break/Continue: nothing to do.


def _iter_functions(
    tree: ast.Module, qname: str
) -> Iterable[
    tuple[str, str | None, str | None, list[ast.stmt], list[str], int, bool]
]:
    """Yield (qname, class_qname, class_name, body, params, line,
    is_class_body) units.

    Covers the module body (as pseudo-function ``<module>``), top-level
    functions, methods, class bodies (field defaults), and nested
    functions (qname-chained; nested functions are analyzed standalone
    — closure taint is out of scope).
    """
    yield f"{qname}.<module>", None, None, list(tree.body), [], 1, False

    def walk_fn(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_qname: str | None,
        class_name: str | None,
    ):
        fn_qname = f"{prefix}.{node.name}"
        # Keyword-only args ride at the end: positional mapping never
        # reaches them in practice, and by-name mapping needs them.
        params = [a.arg for a in (
            node.args.posonlyargs + node.args.args + node.args.kwonlyargs
        )]
        yield (
            fn_qname, class_qname, class_name, list(node.body), params,
            node.lineno, False,
        )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk_fn(child, fn_qname, class_qname, class_name)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from walk_fn(node, qname, None, None)
        elif isinstance(node, ast.ClassDef):
            class_qname = f"{qname}.{node.name}"
            yield (
                f"{class_qname}.<class>", class_qname, node.name,
                list(node.body), [], node.lineno, True,
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from walk_fn(item, class_qname, class_qname, node.name)


def source_digest(source: str, path: str | Path) -> str:
    """Cache key of one file's analysis: content, path, and version."""
    hasher = hashlib.sha256()
    hasher.update(f"{ANALYZER_VERSION}:{path}:".encode())
    hasher.update(source.encode())
    return hasher.hexdigest()


def extract_module(source: str, path: str | Path) -> ModuleSummary:
    """Phase 1: parse one file into its cacheable :class:`ModuleSummary`.

    Raises :class:`SyntaxError` when the source does not parse.
    """
    path_str = str(path)
    tree = ast.parse(source, filename=path_str)
    info = index_module(tree, path_str)
    summary = ModuleSummary(
        path=path_str,
        digest=source_digest(source, path_str),
        info=info,
        pragmas=pragmas_for_source(source),
    )
    summary.local_findings.extend(lint_source_raw(source, path_str))
    for (
        fn_qname, class_qname, class_name, body, params, line, is_class_body
    ) in _iter_functions(tree, info.qname):
        summary.local_findings.extend(
            fs_rules.check_function(body, path_str, fn_qname)
        )
        fn = FnSummary(
            qname=fn_qname,
            class_qname=class_qname,
            class_name=class_name,
            params=params,
            line=line,
        )
        _FunctionExtractor(fn, info.qname, class_body=is_class_body).exec_body(body)
        summary.functions.append(fn)
    return summary


# ---------------------------------------------------------------------------
# summary cache


class SummaryCache:
    """Content-hash-keyed store of serialized module summaries.

    One JSON file per analyzed source file, named by the source digest
    (which covers analyzer version, file path, and content, so an edit
    — or a rule change — is automatically a miss).  Writes practice
    what the FS rules preach: staged to a pid/thread-unique temp file,
    fsynced, and atomically replaced.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory).expanduser()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _entry(self, digest: str) -> Path:
        return self.directory / f"{digest[:32]}.json"

    def get(self, digest: str) -> ModuleSummary | None:
        entry = self._entry(digest)
        try:
            with open(entry) as handle:
                doc = json.load(handle)
        except (FileNotFoundError, ValueError, OSError):
            self.misses += 1
            return None
        if doc.get("version") != ANALYZER_VERSION or doc.get("digest") != digest:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(doc)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        entry = self._entry(summary.digest)
        tmp = entry.with_name(
            f"{entry.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        with open(tmp, "w") as handle:
            json.dump(summary.to_dict(), handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, entry)


# ---------------------------------------------------------------------------
# solving


#: A trace: (root, steps) where root = (path, line, detail) and each
#: step = (path, line, text).
Trace = tuple[tuple[str, int, str], tuple[tuple[str, int, str], ...]]


def _cap_steps(steps: tuple) -> tuple:
    return steps if len(steps) <= 2 * _MAX_STEPS else steps[: 2 * _MAX_STEPS]


@dataclass(frozen=True)
class _SinkPath:
    """A (transitive) route from a function parameter to a sink."""

    code: str
    detail: str
    path: str
    line: int
    steps: tuple


class Program:
    """Phase 2: the cross-module fixpoint over extracted summaries."""

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.summaries = list(summaries)
        self.index = ProgramIndex([s.info for s in summaries])
        self.functions: dict[str, FnSummary] = {}
        self.fn_path: dict[str, str] = {}
        self.fn_module: dict[str, ModuleInfo] = {}
        for summary in summaries:
            for fn in summary.functions:
                self.functions[fn.qname] = fn
                self.fn_path[fn.qname] = summary.path
                self.fn_module[fn.qname] = summary.info
        #: (fn_qname, callsite_index) -> resolved candidate qnames.
        self.resolved: dict[tuple[str, int], tuple[str, ...]] = {}
        for fn in self.functions.values():
            module = self.fn_module[fn.qname]
            for cs in fn.calls:
                candidates = self.index.resolve_call(
                    cs.name, module, fn.class_qname
                )
                self.resolved[(fn.qname, cs.index)] = tuple(
                    c for c in candidates if c in self.functions
                )
        # Fixpoint state.
        self.ret_kinds: dict[str, dict[str, Trace]] = {}
        self.call_kinds: dict[tuple[str, int], dict[str, Trace]] = {}
        self.attr_kinds: dict[str, dict[str, Trace]] = {}
        self.par_ret: dict[str, dict[int, tuple]] = {}
        self.par_sink: dict[tuple[str, int], list[_SinkPath]] = {}
        self.attr_sink: dict[str, list[_SinkPath]] = {}

    # -- step/trace plumbing -------------------------------------------

    def _steps(self, fn: str, raw: list) -> tuple:
        path = self.fn_path[fn]
        return tuple((path, int(line), str(text)) for line, text in raw)

    def _src_root(self, fn: str, payload: list) -> tuple[str, int, str]:
        kind, detail, line = payload
        return (self.fn_path[fn], int(line), f"{kind} {detail}")

    def _param_index(self, cand: str, cs: CallSiteRec, arg) -> int | None:
        callee = self.functions.get(cand)
        if callee is None:
            return None
        if isinstance(arg, str):
            if arg == "**":
                return None
            return callee.params.index(arg) if arg in callee.params else None
        offset = 0
        if callee.params and callee.params[0] in ("self", "cls"):
            if cs.is_attr or cand.endswith(".__init__"):
                offset = 1
        position = int(arg) + offset
        return position if position < len(callee.params) else None

    # -- fixpoint ------------------------------------------------------

    def solve(self) -> list[Finding]:
        for _ in range(30):
            changed = False
            for fn_qname in sorted(self.functions):
                changed |= self._update_fn(fn_qname)
            if not changed:
                break
        return self._emit()

    def _add_kinds(
        self, into: dict[str, Trace], kinds: dict[str, Trace]
    ) -> bool:
        changed = False
        for kind, trace in kinds.items():
            if kind not in into:
                into[kind] = trace
                changed = True
        return changed

    def _incoming(self, fn: FnSummary) -> dict[int, list[tuple[str, Trace, object]]]:
        """Per-callsite concrete taint arriving at each argument."""
        arriving: dict[int, list[tuple[str, Trace, object]]] = {}
        for payload, cs_i, arg, steps in fn.edges.get("src_call", ()):
            root = self._src_root(fn.qname, payload)
            trace: Trace = (root, self._steps(fn.qname, steps))
            arriving.setdefault(int(cs_i), []).append(
                (str(payload[0]), trace, arg)
            )
        for payload, cs_i, arg, steps in fn.edges.get("call_call", ()):
            from_cs = int(payload[0])
            for kind, (root, s0) in self.call_kinds.get(
                (fn.qname, from_cs), {}
            ).items():
                trace = (root, _cap_steps(s0 + self._steps(fn.qname, steps)))
                arriving.setdefault(int(cs_i), []).append((kind, trace, arg))
        for payload, cs_i, arg, steps in fn.edges.get("attr_call", ()):
            attr = str(payload[0])
            for kind, (root, s0) in self.attr_kinds.get(attr, {}).items():
                trace = (root, _cap_steps(s0 + self._steps(fn.qname, steps)))
                arriving.setdefault(int(cs_i), []).append((kind, trace, arg))
        return arriving

    def _update_fn(self, fn_qname: str) -> bool:
        fn = self.functions[fn_qname]
        changed = False
        arriving = self._incoming(fn)

        # 1. call_kinds: what each call's *result* may carry.
        for cs in fn.calls:
            key = (fn_qname, cs.index)
            current = self.call_kinds.setdefault(key, {})
            candidates = self.resolved.get(key, ())
            incoming = arriving.get(cs.index, [])
            if not candidates:
                # Unresolved callee: assume arguments taint the result.
                for kind, trace, _arg in incoming:
                    changed |= self._add_kinds(current, {kind: trace})
                continue
            for cand in candidates:
                bridge = (
                    self.fn_path[fn_qname], cs.line,
                    f"{cs.name}(...) returns it",
                )
                for kind, (root, steps) in self.ret_kinds.get(cand, {}).items():
                    changed |= self._add_kinds(
                        current,
                        {kind: (root, _cap_steps(steps + (bridge,)))},
                    )
                for kind, trace, arg in incoming:
                    pi = self._param_index(cand, cs, arg)
                    if pi is not None and pi in self.par_ret.get(cand, {}):
                        root, steps = trace
                        through = self.par_ret[cand][pi]
                        changed |= self._add_kinds(
                            current,
                            {kind: (root, _cap_steps(steps + through))},
                        )

        # 2. ret_kinds.
        current_ret = self.ret_kinds.setdefault(fn_qname, {})
        for payload, steps in fn.edges.get("src_ret", ()):
            root = self._src_root(fn_qname, payload)
            changed |= self._add_kinds(
                current_ret,
                {str(payload[0]): (root, self._steps(fn_qname, steps))},
            )
        for payload, steps in fn.edges.get("call_ret", ()):
            cs_i = int(payload[0])
            for kind, (root, s0) in self.call_kinds.get(
                (fn_qname, cs_i), {}
            ).items():
                changed |= self._add_kinds(
                    current_ret,
                    {kind: (root, _cap_steps(s0 + self._steps(fn_qname, steps)))},
                )
        for payload, steps in fn.edges.get("attr_ret", ()):
            for kind, (root, s0) in self.attr_kinds.get(str(payload[0]), {}).items():
                changed |= self._add_kinds(
                    current_ret,
                    {kind: (root, _cap_steps(s0 + self._steps(fn_qname, steps)))},
                )

        # 3. par_ret: which parameters flow to the return value.
        current_par = self.par_ret.setdefault(fn_qname, {})
        for payload, steps in fn.edges.get("par_ret", ()):
            i = int(payload[0])
            if i not in current_par:
                current_par[i] = self._steps(fn_qname, steps)
                changed = True
        has_call_ret = {
            int(payload[0]): steps
            for payload, steps in fn.edges.get("call_ret", ())
        }
        for payload, cs_i, arg, steps in fn.edges.get("par_call", ()):
            cs_i = int(cs_i)
            if cs_i not in has_call_ret:
                continue
            i = int(payload[0])
            if i in current_par:
                continue
            cs = fn.calls[cs_i]
            candidates = self.resolved.get((fn_qname, cs_i), ())
            passes = not candidates  # unresolved: args taint the result
            for cand in candidates:
                pi = self._param_index(cand, cs, arg)
                if pi is not None and pi in self.par_ret.get(cand, {}):
                    passes = True
                    break
            if passes:
                current_par[i] = _cap_steps(
                    self._steps(fn_qname, steps)
                    + self._steps(fn_qname, has_call_ret[cs_i])
                )
                changed = True

        # 4. attr_kinds.
        for payload, attr, steps in fn.edges.get("src_attr", ()):
            root = self._src_root(fn_qname, payload)
            current_attr = self.attr_kinds.setdefault(str(attr), {})
            changed |= self._add_kinds(
                current_attr,
                {str(payload[0]): (root, self._steps(fn_qname, steps))},
            )
        for payload, attr, steps in fn.edges.get("call_attr", ()):
            cs_i = int(payload[0])
            current_attr = self.attr_kinds.setdefault(str(attr), {})
            for kind, (root, s0) in self.call_kinds.get(
                (fn_qname, cs_i), {}
            ).items():
                changed |= self._add_kinds(
                    current_attr,
                    {kind: (root, _cap_steps(s0 + self._steps(fn_qname, steps)))},
                )

        # 5. par_sink / attr_sink: parameters and attributes that reach
        # a sink (transitively).
        changed |= self._update_sink_routes(fn)
        return changed

    def _add_sink_path(
        self, store: list[_SinkPath], entry: _SinkPath
    ) -> bool:
        if len(store) >= _MAX_SINK_PATHS:
            return False
        if any(
            e.code == entry.code and e.path == entry.path and e.line == entry.line
            for e in store
        ):
            return False
        store.append(entry)
        return True

    def _routes_for(
        self, fn: FnSummary, cs_i: int, arg, steps: tuple
    ) -> list[_SinkPath]:
        """Sink routes reachable by feeding argument ``arg`` of call ``cs_i``."""
        routes: list[_SinkPath] = []
        cs = fn.calls[cs_i]
        if cs.sink is not None:
            routes.append(
                _SinkPath(
                    code=cs.sink,
                    detail=cs.sink_detail,
                    path=self.fn_path[fn.qname],
                    line=cs.line,
                    steps=steps,
                )
            )
        for cand in self.resolved.get((fn.qname, cs_i), ()):
            pi = self._param_index(cand, cs, arg)
            if pi is None:
                continue
            for route in self.par_sink.get((cand, pi), ()):
                routes.append(
                    _SinkPath(
                        code=route.code,
                        detail=route.detail,
                        path=route.path,
                        line=route.line,
                        steps=_cap_steps(steps + route.steps),
                    )
                )
        return routes

    def _update_sink_routes(self, fn: FnSummary) -> bool:
        changed = False
        for payload, cs_i, arg, steps in fn.edges.get("par_call", ()):
            i = int(payload[0])
            store = self.par_sink.setdefault((fn.qname, i), [])
            for route in self._routes_for(
                fn, int(cs_i), arg, self._steps(fn.qname, steps)
            ):
                changed |= self._add_sink_path(store, route)
        for payload, attr, steps in fn.edges.get("par_attr", ()):
            i = int(payload[0])
            store = self.par_sink.setdefault((fn.qname, i), [])
            for route in self.attr_sink.get(str(attr), ()):
                changed |= self._add_sink_path(
                    store,
                    _SinkPath(
                        code=route.code, detail=route.detail,
                        path=route.path, line=route.line,
                        steps=_cap_steps(
                            self._steps(fn.qname, steps) + route.steps
                        ),
                    ),
                )
        for payload, cs_i, arg, steps in fn.edges.get("attr_call", ()):
            attr = str(payload[0])
            store_attr = self.attr_sink.setdefault(attr, [])
            for route in self._routes_for(
                fn, int(cs_i), arg, self._steps(fn.qname, steps)
            ):
                changed |= self._add_sink_path(store_attr, route)
        return changed

    # -- emission ------------------------------------------------------

    def _emit(self) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[tuple] = set()

        def report(
            kind: str, trace: Trace, route: _SinkPath
        ) -> None:
            root, steps = trace
            key = (root[0], root[1], kind, route.code, route.path, route.line)
            if key in seen:
                return
            seen.add(key)
            summary, _ = TNT_RULES[route.code]
            sink_at = f"{route.path}:{route.line}"
            message = (
                f"{summary}: {root[2]} reaches {route.detail} "
                f"at {sink_at}"
            )
            full_trace = (
                (root,)
                + tuple(steps)
                + tuple(route.steps)
                + ((route.path, route.line, route.detail),)
            )
            findings.append(
                Finding(
                    path=root[0],
                    line=root[1],
                    col=1,
                    code=route.code,
                    message=message,
                    severity=severity_for(route.code, kind),
                    anchor=kind,
                    trace=full_trace,
                )
            )

        for fn_qname in sorted(self.functions):
            fn = self.functions[fn_qname]
            for payload, cs_i, arg, steps in fn.edges.get("src_call", ()):
                root = self._src_root(fn_qname, payload)
                trace: Trace = (root, self._steps(fn_qname, steps))
                for route in self._routes_for(
                    fn, int(cs_i), arg, ()
                ):
                    report(str(payload[0]), trace, route)
            for payload, cs_i, arg, steps in fn.edges.get("call_call", ()):
                from_cs = int(payload[0])
                kinds = self.call_kinds.get((fn_qname, from_cs), {})
                local_steps = self._steps(fn_qname, steps)
                for kind, (root, s0) in kinds.items():
                    for route in self._routes_for(fn, int(cs_i), arg, ()):
                        report(
                            kind,
                            (root, _cap_steps(s0 + local_steps)),
                            route,
                        )
            for payload, cs_i, arg, steps in fn.edges.get("attr_call", ()):
                attr = str(payload[0])
                kinds = self.attr_kinds.get(attr, {})
                local_steps = self._steps(fn_qname, steps)
                for kind, (root, s0) in kinds.items():
                    for route in self._routes_for(fn, int(cs_i), arg, ()):
                        report(
                            kind,
                            (root, _cap_steps(s0 + local_steps)),
                            route,
                        )
            for payload, attr, steps in fn.edges.get("src_attr", ()):
                root = self._src_root(fn_qname, payload)
                local_steps = self._steps(fn_qname, steps)
                for route in self.attr_sink.get(str(attr), ()):
                    report(str(payload[0]), (root, local_steps), route)
            for payload, attr, steps in fn.edges.get("call_attr", ()):
                cs_i = int(payload[0])
                kinds = self.call_kinds.get((fn_qname, cs_i), {})
                local_steps = self._steps(fn_qname, steps)
                for kind, (root, s0) in kinds.items():
                    for route in self.attr_sink.get(str(attr), ()):
                        report(kind, (root, _cap_steps(s0 + local_steps)), route)
        return findings


# ---------------------------------------------------------------------------
# driver


@dataclass
class DeepReport:
    """Outcome of one ``repro lint --deep`` analysis."""

    findings: list[Finding]
    errors: list[str]
    files_checked: int
    cache_hits: int = 0
    cache_misses: int = 0
    #: Analysis wall time (extraction + fixpoint), excluding process
    #: startup — this is what the summary cache accelerates, so the CI
    #: cold/warm speedup assertion reads it from the JSON report.
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_dict(self) -> dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "errors": list(self.errors),
            "findings": [finding.to_dict() for finding in self.findings],
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "elapsed_s": self.elapsed_s,
        }


def deep_rule_codes() -> frozenset[str]:
    """Every rule code a deep run exercises (for DET000 bookkeeping)."""
    return frozenset(
        [rule.code for rule in all_rules()]
        + list(TNT_RULES)
        + list(FS_RULES)
    )


def analyze_paths(
    paths: Iterable[str | Path],
    cache: SummaryCache | None = None,
) -> DeepReport:
    """Run the whole-program analysis over files and directory trees.

    ``cache`` (optional) is consulted per file by content digest; on a
    warm cache no file is parsed at all — only the cross-module solve
    runs, which is where the ≥5x warm-run speedup comes from.
    """
    started = time.perf_counter()
    files, errors = _python_files(paths)
    summaries: list[ModuleSummary] = []
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{file_path}: {exc.strerror or exc}")
            continue
        digest = source_digest(source, file_path)
        summary = cache.get(digest) if cache is not None else None
        if summary is None:
            try:
                summary = extract_module(source, file_path)
            except SyntaxError as exc:
                errors.append(f"{file_path}: {exc.msg} (line {exc.lineno})")
                continue
            if cache is not None:
                cache.put(summary)
        summaries.append(summary)

    program = Program(summaries)
    deep_findings = program.solve()

    # Pragma application: local findings suppress at their own line; a
    # deep finding may be suppressed at the source line (its location)
    # or the sink line (the last trace step).
    pragmas_by_path = {s.path: s.pragmas for s in summaries}
    used: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    for summary in summaries:
        file_kept, _ = apply_pragmas(
            summary.local_findings,
            summary.pragmas,
            summary.path,
            warn_unused=False,
            used=used,
        )
        kept.extend(file_kept)
    for finding in deep_findings:
        source_allowed = pragmas_by_path.get(finding.path, {})
        if finding.code in source_allowed.get(finding.line, frozenset()):
            used.add((finding.path, finding.line, finding.code))
            continue
        if finding.trace:
            sink_path, sink_line, _ = finding.trace[-1]
            sink_allowed = pragmas_by_path.get(sink_path, {})
            if finding.code in sink_allowed.get(sink_line, frozenset()):
                used.add((sink_path, sink_line, finding.code))
                continue
        kept.append(finding)
    # DET000: every deep-mode rule ran, so any pragma code that
    # suppressed nothing is stale.
    ran = deep_rule_codes()
    for summary in summaries:
        _, unused = apply_pragmas(
            [], summary.pragmas, summary.path, ran_codes=ran, used=used
        )
        kept.extend(unused)

    return DeepReport(
        findings=sorted(kept, key=lambda finding: finding.sort_key),
        errors=errors,
        files_checked=len(files),
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        elapsed_s=time.perf_counter() - started,
    )


__all__ = [
    "ANALYZER_VERSION",
    "DeepReport",
    "FnSummary",
    "ModuleSummary",
    "Program",
    "SummaryCache",
    "analyze_paths",
    "deep_rule_codes",
    "extract_module",
    "source_digest",
]
