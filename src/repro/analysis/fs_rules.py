"""Filesystem-atomicity rules (FS001–FS004).

These target the bug class fixed by hand in the cache-dir publish race:
code that writes results, journals, or indexes into a *shared*
directory (multiple runners, a scheduler next to API workers, a crash
mid-write) must stage to a private temp file, fsync it, and atomically
``os.replace``/``os.link`` it into place.  Each rule flags one way that
discipline decays:

* **FS001** — a write opened directly on a final shared path with no
  ``os.replace``/``os.link``/``publish*`` in the same function: a
  reader (or a crash) can observe a torn or empty entry.
* **FS002** — ``os.replace`` of a file this function wrote without an
  ``os.fsync`` first: a crash can surface the rename but not the data,
  publishing a zero-length "valid" entry.
* **FS003** — ``exists()`` followed by ``open()`` of the same shared
  path with no atomic installer in the function: the classic
  check-then-act window.  Functions that *do* link/replace are exempt
  (their ``exists()`` is an advisory fast path; the link is the real
  arbiter).
* **FS004** — a temp file in a shared directory whose name carries no
  uniquifier (pid/thread/uuid/``mkstemp``) and isn't opened with an
  exclusive ``"x"`` mode: two writers stage to the same file and
  interleave.

All four are *function-scoped* heuristics over the AST, with one level
of variable expansion (``path = self.cache_dir / name`` then
``open(path, "w")`` is matched through ``path``).  "Shared" is spelled
by name: an expression mentions a store/cache/journal/quarantine
directory.  That trades recall for precision — an ordinary CSV export
never matches — and the deliberate exceptions that remain (an
append-only single-writer journal, say) carry ``# repro: allow(FSxxx)``
pragmas with their justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.linter import Finding, Severity

#: FS rule codes -> (summary, severity).
FS_RULES: dict[str, tuple[str, Severity]] = {
    "FS001": (
        "non-atomic write to a shared path; stage to a temp file and "
        "os.replace()/os.link() it into place",
        Severity.ERROR,
    ),
    "FS002": (
        "os.replace of a written file without fsync; a crash can publish "
        "the rename but not the data",
        Severity.ERROR,
    ),
    "FS003": (
        "exists()-then-open() on a shared path is a check-then-act race",
        Severity.WARNING,
    ),
    "FS004": (
        "shared-directory temp file without an exclusive or uniquified "
        "name; racing writers can interleave",
        Severity.WARNING,
    ),
}

#: Substrings that mark a path expression as living in a directory
#: shared between processes/threads of this system.
SHARED_HINTS = (
    "cache_dir",
    "store",
    "journal",
    "quarantine",
    "index_path",
    "campaigns",
    "manifest_dir",
    "server.json",
    "spool",
)

#: Substrings that mark a path expression as a staging/temp file.
TMP_HINTS = ("tmp", "temp", "staging")

#: Evidence that a temp-file name cannot collide between writers.
UNIQUIFIER_HINTS = (
    "getpid",
    "get_ident",
    "uuid",
    "mkstemp",
    "namedtemporaryfile",
    "o_excl",
)

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass(frozen=True)
class _Write:
    target: str  # unparsed path expression
    mode: str  # "" when not determinable (dynamic or write_text/bytes)
    line: int
    col: int


@dataclass(frozen=True)
class _PathUse:
    text: str
    line: int
    col: int


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _local_walk(body: list[ast.stmt]):
    """Walk statements without descending into nested def/class.

    Defs in ``body`` itself are skipped too: a module-body scan must
    not re-scan the functions it contains (each gets its own scan).
    """
    stack: list[ast.AST] = [
        node
        for node in body
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


class _FunctionScan:
    """One pass over a function body collecting file-operation facts."""

    def __init__(self, body: list[ast.stmt]) -> None:
        self.assigned: dict[str, str] = {}  # var -> unparsed RHS
        self.writes: list[_Write] = []
        self.replaces: list[_PathUse] = []  # text of the *source* path
        self.opens: list[_PathUse] = []  # any open/read of a path
        self.exists: list[_PathUse] = []
        self.has_fsync = False
        self.has_link = False
        self.has_replace = False
        self.has_publish = False
        for node in _local_walk(body):
            if isinstance(node, ast.Assign):
                self._scan_assign(node)
            elif isinstance(node, ast.Call):
                self._scan_call(node)

    # ------------------------------------------------------------------

    def _scan_assign(self, node: ast.Assign) -> None:
        rhs = ast.unparse(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.assigned[target.id] = rhs

    def _scan_call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        simple = name.rsplit(".", 1)[-1] if name else ""
        if name == "os.fsync":
            self.has_fsync = True
        elif name == "os.link":
            self.has_link = True
        elif simple in ("publish", "publish_path"):
            self.has_publish = True
        elif name == "os.replace" and node.args:
            self.has_replace = True
            self.replaces.append(self._use(node.args[0], node))
        elif simple == "replace" and isinstance(node.func, ast.Attribute):
            # Path.replace(target) — receiver is the source path.  Only
            # treated as a file op if the receiver was written in this
            # function (str.replace never is).
            self.has_replace = True
            self.replaces.append(self._use(node.func.value, node))
        elif simple == "exists" and isinstance(node.func, ast.Attribute):
            self.exists.append(self._use(node.func.value, node))
        elif name == "os.path.exists" and node.args:
            self.exists.append(self._use(node.args[0], node))
        if name == "open" and node.args:
            mode = ""
            mode_node: ast.AST | None = None
            if len(node.args) >= 2:
                mode_node = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "mode":
                        mode_node = kw.value
            if isinstance(mode_node, ast.Constant) and isinstance(
                mode_node.value, str
            ):
                mode = mode_node.value
            elif mode_node is None:
                mode = "r"
            use = self._use(node.args[0], node)
            self.opens.append(use)
            if any(c in mode for c in "wax"):
                self.writes.append(_Write(use.text, mode, node.lineno, node.col_offset))
        elif simple in ("write_text", "write_bytes") and isinstance(
            node.func, ast.Attribute
        ):
            use = self._use(node.func.value, node)
            self.opens.append(use)
            self.writes.append(_Write(use.text, "w", node.lineno, node.col_offset))
        elif simple in ("open", "read_text", "read_bytes") and isinstance(
            node.func, ast.Attribute
        ):
            self.opens.append(self._use(node.func.value, node))

    def _use(self, expr: ast.AST, call: ast.Call) -> _PathUse:
        return _PathUse(ast.unparse(expr), call.lineno, call.col_offset)

    # ------------------------------------------------------------------

    def expand(self, text: str) -> str:
        """``text`` plus the RHS of every local variable it mentions.

        One level only: enough to see through ``path = self.cache_dir /
        name`` without dragging in unrelated definitions.
        """
        parts = [text]
        for name in _NAME_RE.findall(text):
            rhs = self.assigned.get(name)
            if rhs is not None:
                parts.append(rhs)
        return " ".join(parts)

    def wrote(self, text: str) -> bool:
        return any(w.target == text for w in self.writes)


def _is_shared(expanded: str) -> bool:
    lowered = expanded.lower()
    return any(hint in lowered for hint in SHARED_HINTS)


def _is_tmp(expanded: str) -> bool:
    lowered = expanded.lower()
    return any(hint in lowered for hint in TMP_HINTS)


def _finding(
    code: str, path: str, line: int, col: int, anchor: str, detail: str
) -> Finding:
    summary, severity = FS_RULES[code]
    return Finding(
        path=path,
        line=line,
        col=col + 1,
        code=code,
        message=f"{summary} ({detail})",
        severity=severity,
        anchor=anchor,
    )


def check_function(
    body: list[ast.stmt], path: str, anchor: str
) -> list[Finding]:
    """Run FS001–FS004 over one function body (or the module body)."""
    scan = _FunctionScan(body)
    findings: list[Finding] = []
    atomic_installer = scan.has_link or scan.has_replace or scan.has_publish

    for write in scan.writes:
        expanded = scan.expand(write.target)
        tmp = _is_tmp(expanded)
        shared = _is_shared(expanded)
        # FS001: direct overwrite of a final shared path.  Appends are
        # exempt (journals are append-only by design) as are exclusive
        # creates; temp-file writes are FS004's concern.
        if (
            shared
            and not tmp
            and not atomic_installer
            and "w" in write.mode
            and "x" not in write.mode
        ):
            findings.append(
                _finding(
                    "FS001", path, write.line, write.col, anchor,
                    f"write to {write.target!r}",
                )
            )
        # FS004: shared-directory temp file with a collidable name.
        if (
            tmp
            and shared
            and "x" not in write.mode
            and not any(
                hint in expanded.lower() for hint in UNIQUIFIER_HINTS
            )
        ):
            findings.append(
                _finding(
                    "FS004", path, write.line, write.col, anchor,
                    f"temp file {write.target!r}",
                )
            )

    # FS002: replace of a file written here, with no fsync anywhere in
    # the function.  Matching on the written target's exact spelling
    # keeps str.replace out (its receiver is never a written path).
    if not scan.has_fsync:
        for replace in scan.replaces:
            if scan.wrote(replace.text):
                findings.append(
                    _finding(
                        "FS002", path, replace.line, replace.col, anchor,
                        f"os.replace of {replace.text!r}",
                    )
                )

    # FS003: exists() then open() of the same shared path.  An atomic
    # installer in the function makes the exists() advisory (the
    # compare-and-publish fast path), so those are exempt.
    if not atomic_installer:
        for exists in scan.exists:
            expanded = scan.expand(exists.text)
            if not _is_shared(expanded):
                continue
            for use in scan.opens:
                if use.text == exists.text and use.line >= exists.line:
                    findings.append(
                        _finding(
                            "FS003", path, use.line, use.col, anchor,
                            f"exists() at line {exists.line}, then open of "
                            f"{use.text!r}",
                        )
                    )
                    break

    return findings


__all__ = ["FS_RULES", "SHARED_HINTS", "TMP_HINTS", "check_function"]
