"""Statistics primitives: counters and (time-)weighted histograms.

The paper reports two distribution-style results that need care to
reproduce faithfully:

* Figure 4 -- "distribution of the number of outstanding memory
  requests *when the DRAM system is busy*", and
* Figure 5 -- "distribution of the number of threads that generate
  outstanding requests *when multiple requests are presented*".

Both are distributions over *time*, not over requests, so the natural
collector is a histogram whose weights are the number of cycles spent
in each state: :class:`TimeWeightedHistogram`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping


class RateCounter:
    """A hits/total counter with a safe rate accessor.

    >>> c = RateCounter()
    >>> c.record(True); c.record(False); c.record(False)
    >>> round(c.rate, 3)
    0.333
    """

    __slots__ = ("hits", "total")

    def __init__(self) -> None:
        self.hits = 0
        self.total = 0

    def record(self, hit: bool, count: int = 1) -> None:
        self.total += count
        if hit:
            self.hits += count

    @property
    def misses(self) -> int:
        return self.total - self.hits

    @property
    def rate(self) -> float:
        """Hit fraction; 0.0 when nothing was recorded."""
        return self.hits / self.total if self.total else 0.0

    @property
    def miss_rate(self) -> float:
        """Miss fraction; 0.0 when nothing was recorded."""
        return 1.0 - self.rate if self.total else 0.0

    def merge(self, other: "RateCounter") -> None:
        self.hits += other.hits
        self.total += other.total

    def __repr__(self) -> str:  # pragma: no cover
        return f"RateCounter(hits={self.hits}, total={self.total})"


class WeightedHistogram:
    """Histogram over integer bins with float weights."""

    __slots__ = ("_bins",)

    def __init__(self) -> None:
        self._bins: Dict[int, float] = {}

    def add(self, bin_value: int, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        if weight:
            self._bins[bin_value] = self._bins.get(bin_value, 0.0) + weight

    @property
    def total_weight(self) -> float:
        return sum(self._bins.values())

    def as_dict(self) -> Dict[int, float]:
        """Raw bin -> weight mapping (a copy)."""
        return dict(self._bins)

    def normalized(self) -> Dict[int, float]:
        """Bin -> probability mapping (empty if no weight recorded)."""
        total = self.total_weight
        if not total:
            return {}
        return {b: w / total for b, w in sorted(self._bins.items())}

    def probability_at_least(self, threshold: int) -> float:
        """P(bin >= threshold) under the normalized distribution."""
        total = self.total_weight
        if not total:
            return 0.0
        heavy = sum(w for b, w in self._bins.items() if b >= threshold)
        return heavy / total

    def mean(self) -> float:
        total = self.total_weight
        if not total:
            return 0.0
        return sum(b * w for b, w in self._bins.items()) / total

    def bucketed(self, edges: Iterable[int]) -> Dict[str, float]:
        """Group bins into labelled ranges for figure-style reporting.

        ``edges`` are ascending inclusive lower bounds; e.g.
        ``edges=(1, 2, 4, 8, 16)`` produces buckets labelled
        ``"1"``, ``"2-3"``, ``"4-7"``, ``"8-15"``, ``"16+"``.
        """
        edges = sorted(edges)
        if not edges:
            raise ValueError("edges must be non-empty")
        labels = []
        for i, lo in enumerate(edges):
            if i + 1 < len(edges):
                hi = edges[i + 1] - 1
                labels.append(str(lo) if hi == lo else f"{lo}-{hi}")
            else:
                labels.append(f"{lo}+")
        result = {label: 0.0 for label in labels}
        total = self.total_weight
        if not total:
            return result
        for b, w in self._bins.items():
            for i in range(len(edges) - 1, -1, -1):
                if b >= edges[i]:
                    result[labels[i]] += w / total
                    break
        return result

    def merge(self, other: "WeightedHistogram") -> None:
        for b, w in other._bins.items():
            self.add(b, w)


class TimeWeightedHistogram(WeightedHistogram):
    """Histogram that integrates a piecewise-constant signal over time.

    Call :meth:`observe` whenever the tracked value changes; the time
    elapsed since the previous observation is credited to the previous
    value.  Call :meth:`finish` at the end of the run to credit the
    final segment.

    >>> h = TimeWeightedHistogram()
    >>> h.observe(0, 3)    # value becomes 3 at t=0
    >>> h.observe(10, 5)   # value was 3 during [0, 10)
    >>> h.finish(15)       # value was 5 during [10, 15)
    >>> h.as_dict()
    {3: 10.0, 5: 5.0}
    """

    __slots__ = ("_last_time", "_last_value")

    def __init__(self) -> None:
        super().__init__()
        self._last_time: int | None = None
        self._last_value: int = 0

    def observe(self, time: int, value: int) -> None:
        """The tracked value becomes ``value`` at ``time``."""
        if self._last_time is not None:
            if time < self._last_time:
                raise ValueError(
                    f"observation at {time} before previous {self._last_time}"
                )
            self.add(self._last_value, float(time - self._last_time))
        self._last_time = time
        self._last_value = value

    def finish(self, time: int) -> None:
        """Credit the final segment ending at ``time``."""
        if self._last_time is not None and time > self._last_time:
            self.add(self._last_value, float(time - self._last_time))
            self._last_time = time


def format_distribution(dist: Mapping[str, float], width: int = 40) -> str:
    """ASCII rendering of a labelled distribution (for reports).

    >>> print(format_distribution({"1": 0.5, "2+": 0.5}, width=4))
    1   50.0% ##
    2+  50.0% ##
    """
    if not dist:
        return "(empty)"
    label_w = max(len(k) for k in dist)
    lines = []
    for label, frac in dist.items():
        bar = "#" * int(round(frac * width))
        lines.append(f"{label:<{label_w}} {frac * 100:5.1f}% {bar}")
    return "\n".join(lines)
