"""Core shared types: operation classes and the DRAM request record.

These types form the contract between the three simulators: the SMT
core produces :class:`MemRequest` objects (through the cache
hierarchy), the DRAM controller consumes and answers them, and the
thread-aware schedulers read the piggybacked processor state they
carry.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class OpClass(enum.IntEnum):
    """Dynamic instruction classes modelled by the SMT core.

    The classes map to the functional-unit mix of Table 1 of the paper
    (6 IntALU, 6 IntMult, 2 FPALU, 2 FPMult) plus memory and control
    operations.
    """

    INT_ALU = 0
    INT_MULT = 1
    FP_ALU = 2
    FP_MULT = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6

    @property
    def is_memory(self) -> bool:
        """Whether this class accesses the data memory hierarchy."""
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_fp(self) -> bool:
        """Whether this class issues to the floating-point queue."""
        return self in (OpClass.FP_ALU, OpClass.FP_MULT)


class MemAccessType(enum.IntEnum):
    """Direction of a DRAM access.

    ``READ`` covers demand line fills (both load and store misses under
    write-allocate); ``WRITE`` covers dirty write-backs evicted from
    the last-level cache.
    """

    READ = 0
    WRITE = 1


#: Callback invoked when a DRAM request completes.  Receives the
#: completion time in CPU cycles and the request itself.
MemCallback = Callable[[int, "MemRequest"], None]

#: ``req_id`` value of a request not yet admitted to a memory system.
UNASSIGNED_REQUEST_ID = 0


class MemRequest:
    """A single DRAM request (one cache line).

    Carries the thread-state snapshots the paper's thread-aware
    schedulers use (Section 3): the issuing thread's reorder-buffer and
    integer-issue-queue occupancy at the time the miss left the core.
    The paper notes this information is piggybacked with the request
    and may be slightly stale by the time the controller uses it; a
    snapshot models exactly that staleness.

    ``req_id`` is the scheduler tie-breaker and trace key.  It is
    *per-simulation*: requests are constructed with
    :data:`UNASSIGNED_REQUEST_ID` and numbered 1, 2, 3, ... by the
    owning :class:`~repro.dram.system.MemorySystem` when submitted, so
    traces and manifests are identical whether a run is the first or
    the hundredth in its process.  (A process-global counter here once
    made memoized re-runs differ from fresh ones.)  Pass ``req_id``
    explicitly when driving a controller without a memory system.
    """

    __slots__ = (
        "req_id",
        "line_addr",
        "access",
        "thread_id",
        "arrival",
        "rob_occupancy",
        "iq_occupancy",
        "callback",
        "channel",
        "bank",
        "row",
        "issue_time",
        "finish_time",
        "row_hit",
    )

    def __init__(
        self,
        line_addr: int,
        access: MemAccessType,
        thread_id: int,
        arrival: int,
        rob_occupancy: int = 0,
        iq_occupancy: int = 0,
        callback: Optional[MemCallback] = None,
        req_id: int = UNASSIGNED_REQUEST_ID,
    ) -> None:
        if line_addr < 0:
            raise ValueError(f"line_addr must be non-negative, got {line_addr}")
        if arrival < 0:
            raise ValueError(f"arrival must be non-negative, got {arrival}")
        self.req_id = req_id
        self.line_addr = line_addr
        self.access = access
        self.thread_id = thread_id
        self.arrival = arrival
        self.rob_occupancy = rob_occupancy
        self.iq_occupancy = iq_occupancy
        self.callback = callback
        # Filled in by the address mapping when the request enters the
        # memory system.
        self.channel: int = -1
        self.bank: int = -1
        self.row: int = -1
        # Filled in by the controller when the request is served.
        self.issue_time: int = -1
        self.finish_time: int = -1
        self.row_hit: bool = False

    @property
    def is_read(self) -> bool:
        """True for demand fills, False for write-backs."""
        return self.access is MemAccessType.READ

    def age(self, now: int) -> int:
        """Cycles this request has been waiting at time ``now``."""
        return now - self.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "R" if self.is_read else "W"
        return (
            f"MemRequest(#{self.req_id} {kind} line={self.line_addr:#x} "
            f"tid={self.thread_id} arr={self.arrival})"
        )
