"""Shared simulation infrastructure.

This package contains the pieces every other subsystem builds on:

* :mod:`repro.common.events` -- the discrete-event queue that drives the
  memory hierarchy and DRAM controllers.
* :mod:`repro.common.calendar` -- slot calendars used to model
  per-cycle bandwidth resources (issue widths, commit width).
* :mod:`repro.common.stats` -- counters and time-weighted histograms
  used for the paper's Figure 4/5 style distributions.
* :mod:`repro.common.rng` -- deterministic random-number plumbing so a
  given :class:`~repro.experiments.config.SystemConfig` always
  reproduces the same simulation.
* :mod:`repro.common.types` -- enums and the memory-request record
  shared between the CPU, cache, and DRAM models.
"""

from repro.common.calendar import SlotCalendar
from repro.common.errors import ConfigError, ReproError, SimulationError
from repro.common.events import EventQueue
from repro.common.rng import DeterministicRng, child_rng
from repro.common.stats import (
    RateCounter,
    TimeWeightedHistogram,
    WeightedHistogram,
)
from repro.common.types import MemAccessType, MemRequest, OpClass

__all__ = [
    "ConfigError",
    "DeterministicRng",
    "EventQueue",
    "MemAccessType",
    "MemRequest",
    "OpClass",
    "RateCounter",
    "ReproError",
    "SimulationError",
    "SlotCalendar",
    "TimeWeightedHistogram",
    "WeightedHistogram",
    "child_rng",
]
