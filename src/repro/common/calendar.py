"""Slot calendars: per-cycle bandwidth resources.

An out-of-order core has several resources that admit a fixed number of
operations per cycle (issue width, commit width, cache ports).  The SMT
core models contention on these with a *slot calendar*: asking for the
first cycle at or after ``earliest`` with a free slot reserves that
slot and returns the cycle.

Allocations do not have to arrive in time order (an instruction that
became ready far in the future may reserve its slot before one that
becomes ready sooner), so completed cycles are only discarded when the
owner explicitly advances the floor to the simulation clock via
:meth:`SlotCalendar.advance_floor`.
"""

from __future__ import annotations

from repro.common.errors import SimulationError


class SlotCalendar:
    """Tracks slot occupancy of a ``width``-per-cycle resource.

    Example
    -------
    >>> cal = SlotCalendar(width=2)
    >>> [cal.allocate(10) for _ in range(5)]
    [10, 10, 11, 11, 12]
    """

    __slots__ = ("width", "_used", "_floor")

    #: Prune bookkeeping when more than this many cycles are tracked.
    _PRUNE_THRESHOLD = 8192

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.width = width
        self._used: dict[int, int] = {}
        self._floor = 0

    def allocate(self, earliest: int) -> int:
        """Reserve one slot at the first free cycle ``>= earliest``."""
        if earliest < self._floor:
            # The caller promised (via advance_floor) that no work
            # would ever be scheduled this early again.
            raise SimulationError(
                f"allocation at {earliest} before calendar floor {self._floor}"
            )
        used = self._used
        width = self.width
        cycle = earliest
        while used.get(cycle, 0) >= width:
            cycle += 1
        used[cycle] = used.get(cycle, 0) + 1
        return cycle

    def occupancy(self, cycle: int) -> int:
        """Number of slots already reserved at ``cycle``."""
        return self._used.get(cycle, 0)

    def advance_floor(self, cycle: int) -> None:
        """Declare that no allocation will ever be requested before ``cycle``.

        Call this with the simulation clock once it is certain no
        instruction can issue in the past; lets the calendar drop
        bookkeeping for completed cycles.
        """
        if cycle <= self._floor:
            return
        self._floor = cycle
        if len(self._used) > self._PRUNE_THRESHOLD:
            self._used = {c: n for c, n in self._used.items() if c >= cycle}
