"""Deterministic random-number plumbing.

Every stochastic choice in the simulator (synthetic instruction mixes,
address streams, branch outcomes) flows from a single root seed so that
a given configuration always reproduces the same run.  Sub-streams are
derived with stable string tags rather than sequential draws, so adding
a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng(random.Random):
    """A ``random.Random`` tagged with the path that derived it.

    Behaves exactly like :class:`random.Random`; the ``tag`` is kept
    for debugging so a surprising stream can be traced back to its
    derivation path.
    """

    def __init__(self, seed: int, tag: str = "root") -> None:
        super().__init__(seed)
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRng(tag={self.tag!r})"


def derive_seed(root_seed: int, tag: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a string tag.

    Uses BLAKE2 rather than Python's ``hash`` so the derivation is
    stable across processes and interpreter versions.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{tag}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & (2**63 - 1)


def child_rng(root_seed: int, tag: str) -> DeterministicRng:
    """Create an independent child RNG for the given tag.

    >>> a = child_rng(1, "thread0")
    >>> b = child_rng(1, "thread0")
    >>> a.random() == b.random()
    True
    >>> c = child_rng(1, "thread1")
    >>> a.random() == c.random()
    False
    """
    return DeterministicRng(derive_seed(root_seed, tag), tag=tag)
