"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.

Batch-execution failures (:class:`SimulationTimeout`,
:class:`WorkerCrashed`, :class:`BatchAborted`) share the
:class:`JobFailureError` base and always carry the failing job's
identity — config hash, app tuple, attempt count — plus the per-attempt
:class:`JobFailure` records collected before the batch gave up, so an
aborted multi-hour sweep is diagnosable (and resumable) from the
exception alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied.

    Raised eagerly at construction time (e.g. a channel gang that does
    not divide the physical channel count, a cache whose size is not a
    multiple of ``line_size * associativity``) so misconfigurations are
    reported before any simulation work happens.
    """


class SimulationError(ReproError):
    """An internal invariant was violated while a simulation ran.

    Seeing this exception means a bug in the simulator itself (an event
    scheduled in the past, a bank issued a command while busy), never a
    user mistake.
    """


@dataclass(frozen=True)
class JobFailure:
    """One failed attempt of one batch job (see ``repro.experiments.resilience``).

    A job may fail several times before it either succeeds (a retry
    recovered it) or aborts the batch; every attempt leaves one of
    these records in the resilience stats, the batch journal, and on
    the aborting exception.
    """

    #: Content-derived run id (``repro.telemetry.run_id``).
    job_id: str
    #: Stable hash of the job's configuration.
    config_hash: str
    #: Application tuple of the failing mix.
    apps: tuple[str, ...]
    #: 1-based attempt number that failed.
    attempt: int
    #: ``timeout`` | ``crash`` | ``injected`` | ``exception``.
    kind: str
    detail: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "job_id": self.job_id,
            "config_hash": self.config_hash,
            "apps": list(self.apps),
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class JobFailureError(ReproError):
    """Base of batch-execution failures; carries the failing job's identity.

    ``failures`` holds every per-attempt :class:`JobFailure` the batch
    recorded up to the abort (not just the final one), so post-mortems
    see the whole retry history.
    """

    message: str
    job_id: str = ""
    config_hash: str = ""
    apps: tuple[str, ...] = ()
    attempts: int = 0
    failures: tuple[JobFailure, ...] = field(default=())

    def __post_init__(self) -> None:
        super().__init__(self.message)

    def __str__(self) -> str:
        identity = ""
        if self.apps:
            identity = (
                f" [job {self.job_id[:16]} apps={','.join(self.apps)}"
                f" config={self.config_hash[:12]}"
                f" after {self.attempts} attempt(s)]"
            )
        return f"{self.message}{identity}"


class SimulationTimeout(JobFailureError):
    """A job exceeded its wall-clock budget on every allowed attempt."""


class WorkerCrashed(JobFailureError):
    """A worker process died (or the process pool broke) and retries ran out."""


class BatchAborted(JobFailureError):
    """A batch gave up: a job raised a non-retryable error or exhausted retries."""
