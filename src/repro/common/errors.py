"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied.

    Raised eagerly at construction time (e.g. a channel gang that does
    not divide the physical channel count, a cache whose size is not a
    multiple of ``line_size * associativity``) so misconfigurations are
    reported before any simulation work happens.
    """


class SimulationError(ReproError):
    """An internal invariant was violated while a simulation ran.

    Seeing this exception means a bug in the simulator itself (an event
    scheduled in the past, a bank issued a command while busy), never a
    user mistake.
    """
