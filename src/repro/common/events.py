"""Discrete-event queue driving the memory hierarchy and DRAM model.

The SMT core advances a cycle counter; everything below the core (cache
miss handling, DRAM command timing, response delivery) is scheduled on
this queue.  Events at the same timestamp fire in FIFO scheduling
order, which keeps simulations deterministic.

The FIFO tie-break is a load-bearing contract: heap entries carry a
monotonic sequence number (``(time, seq, fn, args)``) so equal
timestamps never fall through to comparing callables, and same-cycle
work fires in exactly the order it was scheduled.  The contract is
pinned by ``tests/common/test_events.py`` (same-cycle ordering
regression suite) and checked at runtime by
:class:`repro.analysis.sanitizer.SanitizedEventQueue`, which asserts
fire-time monotonicity on every pop.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Tuple

from repro.common.errors import SimulationError

EventFn = Callable[..., None]


class EventQueue:
    """A time-ordered queue of callbacks.

    Example
    -------
    >>> q = EventQueue()
    >>> fired = []
    >>> q.schedule(5, fired.append, "a")
    >>> q.schedule(3, fired.append, "b")
    >>> q.run_until(10)
    2
    >>> fired
    ['b', 'a']
    """

    __slots__ = ("_heap", "_seq", "_now")

    def __init__(self) -> None:
        self._heap: list[Tuple[int, int, EventFn, tuple]] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Timestamp of the most recently fired event (or 0)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: int, fn: EventFn, *args: Any) -> None:
        """Schedule ``fn(*args)`` to fire at ``time``.

        ``time`` may equal the current time (fires on the next pump) but
        must never be in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"event scheduled at {time} before current time {self._now}"
            )
        self._seq += 1
        heappush(self._heap, (time, self._seq, fn, args))

    def peek_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` if empty.

        O(1) and side-effect free; this is what skip logic (the
        reference ``_maybe_skip`` and the fast engine's stalled-window
        kernel) consults to bound how far the clock may jump.
        """
        heap = self._heap
        if not heap:
            return None
        return heap[0][0]

    #: Backwards-compatible alias for :meth:`peek_time`.
    next_time = peek_time

    def run_until(self, time: int) -> int:
        """Fire every event with timestamp ``<= time`` in order.

        Returns the number of events fired (0 when the window held
        none), so callers can cheaply detect whether any state may
        have changed — the contract the fast engine's window-reuse
        logic and the tests pin.  Always advances :attr:`now` to
        ``time``.  Events scheduled by fired events are themselves
        fired if they fall inside the window, so the queue fully
        settles before control returns.

        This is the simulator's hottest function: the SMT core pumps it
        every cycle, and on most cycles the heap is empty or its head
        lies beyond the window, so that case returns after a single
        comparison.
        """
        heap = self._heap
        if not heap or heap[0][0] > time:
            self._now = time
            return 0
        return self._drain(time)

    def _drain(self, time: int) -> int:
        """The non-empty-window half of :meth:`run_until`.

        Split out so subclasses (the sanitizer's checking queue) can
        instrument every pop without duplicating the early-out.
        """
        heap = self._heap
        pop = heappop
        fired = 0
        while heap and heap[0][0] <= time:
            when, _seq, fn, args = pop(heap)
            self._now = when
            fn(*args)
            fired += 1
        self._now = time
        return fired

    def run_all(self, limit: int = 10_000_000) -> int:
        """Drain the queue completely (used by memory-only simulations).

        ``limit`` bounds the number of fired events to catch accidental
        event storms; exceeding it raises :class:`SimulationError`.
        """
        fired = 0
        heap = self._heap
        pop = heappop
        while heap:
            when, _seq, fn, args = pop(heap)
            self._now = when
            fn(*args)
            fired += 1
            if fired > limit:
                raise SimulationError(f"event limit {limit} exceeded; runaway loop?")
        return self._now
