"""Deterministic fault injection for the experiment engine.

The resilience layer (``repro.experiments.resilience``) promises that a
batch survives worker crashes, hangs, transient exceptions, and corrupt
cache entries.  This module is the harness that *proves* it: a
:class:`FaultPlan` describes, deterministically, which jobs fail in
which way on which attempt, and the chaos test suite (``tests/chaos``)
asserts that every recovery path produces results bit-identical to a
clean run.

Determinism is the whole point.  A fault either targets an explicit job
(by app tuple or run-id prefix) or fires probabilistically — but the
"probability" is derived from :func:`repro.common.rng.child_rng` seeded
with the plan seed and the job's content-derived identity, so the same
plan over the same job set always injects the same faults, regardless
of execution order, worker count, or how many times the batch is rerun.

Fault kinds
-----------
``exception``
    Raise :class:`InjectedFault` (marked ``transient``, so the
    resilience layer retries it) before the simulation starts.
``crash``
    In a pool worker: ``os._exit`` — the process dies without cleanup,
    breaking the pool exactly like a segfault or OOM kill would.  In
    the parent process (serial execution), raise
    :class:`InjectedCrash` instead, which the executor treats as a
    retryable crash.
``hang``
    Sleep for ``seconds`` (default far longer than any sane timeout),
    exercising the per-job watchdog.
``delay``
    Sleep for ``seconds`` and then run normally — latency without
    failure, for shaking out ordering assumptions.
``sigkill``
    ``kill -9`` semantics: the process hosting the fault dies by
    ``SIGKILL`` — no cleanup, no atexit, no Python teardown.  In a
    pool worker this is the harshest worker death available; with
    ``scope="service"`` it kills the *owning* process (the scheduler
    daemon, and with it the HTTP API), which is how the chaos-service
    harness deterministically murders a live deployment mid-campaign.

Fault *scope* selects where a spec fires.  ``scope="job"`` (the
default) fires at the top of a job attempt, inside the pool worker
when pooled.  ``scope="service"`` fires in the owning process at the
moment the matching job is about to be dispatched — the knob for
killing, hanging, or crashing the scheduler/API process itself at a
deterministic point in a campaign.

Cache-corruption helpers (:func:`corrupt_cache_entry`) truncate,
garbage, or type-confuse a persistent ``ResultCache`` entry in place so
tests can exercise the quarantine path.

A plan can be shipped to a CLI invocation through the
``REPRO_FAULT_PLAN`` environment variable (a path to a JSON plan file,
see :meth:`FaultPlan.to_json`); the CI chaos lane uses this to abort a
real ``fig10`` sweep mid-flight and prove ``--resume`` restores it.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence

from repro.common.errors import ReproError
from repro.common.rng import child_rng

#: Environment variable naming a JSON fault-plan file (CLI chaos runs).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_KINDS = ("exception", "crash", "hang", "delay", "sigkill")

_SCOPES = ("job", "service")


class InjectedFault(ReproError):
    """A deliberately injected, *transient* failure.

    The resilience layer retries any exception whose ``transient``
    attribute is true; real simulator bugs don't set it, so they abort
    the batch immediately instead of burning retries.
    """

    transient = True


class InjectedCrash(InjectedFault):
    """Serial-execution stand-in for a worker crash (can't kill the parent)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what kind, which job, which attempt.

    ``job`` matches a run-id prefix, ``apps`` an exact app tuple;
    leaving both ``None`` targets every job.  ``attempt`` is the
    0-based attempt the fault fires on (``None`` = every attempt —
    beware: an every-attempt fatal fault makes a job unrecoverable,
    which is occasionally exactly what a test wants).  ``rate`` < 1
    makes the fault probabilistic, decided deterministically from the
    plan seed and job identity.  ``scope`` is ``"job"`` (fires where
    the job attempt runs) or ``"service"`` (fires in the owning
    process as the job is dispatched — kills/hangs the daemon itself).
    """

    kind: str
    job: str | None = None
    apps: tuple[str, ...] | None = None
    attempt: int | None = 0
    rate: float = 1.0
    seconds: float = 30.0
    exit_code: int = 23
    scope: str = "job"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.scope not in _SCOPES:
            raise ValueError(
                f"unknown fault scope {self.scope!r}; expected one of {_SCOPES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def should_fire(
        self, plan_seed: int, job_id: str, apps: Sequence[str], attempt: int
    ) -> bool:
        if self.attempt is not None and attempt != self.attempt:
            return False
        if self.apps is not None and tuple(apps) != tuple(self.apps):
            return False
        if self.job is not None and not job_id.startswith(self.job):
            return False
        if self.rate < 1.0:
            draw = child_rng(
                plan_seed, f"fault:{self.kind}:{job_id}:{attempt}"
            ).random()
            if draw >= self.rate:
                return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into a batch.

    Plans are immutable, picklable (they travel to pool workers), and
    JSON-serializable (they travel to CLI subprocesses via
    ``REPRO_FAULT_PLAN``).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    # ------------------------------------------------------------------
    # construction helpers

    @classmethod
    def seeded(
        cls,
        seed: int,
        kinds: Sequence[str] = ("exception",),
        rate: float = 0.25,
        attempt: int | None = 0,
        seconds: float = 30.0,
    ) -> "FaultPlan":
        """A plan that hits a deterministic ``rate`` fraction of jobs.

        Each kind draws independently per job, so a job can suffer more
        than one fault kind across attempts; the draw depends only on
        ``(seed, kind, job identity, attempt)``.
        """
        specs = tuple(
            FaultSpec(kind=kind, rate=rate, attempt=attempt, seconds=seconds)
            for kind in kinds
        )
        return cls(specs=specs, seed=seed)

    # ------------------------------------------------------------------
    # firing

    def pick(
        self,
        job_id: str,
        apps: Sequence[str],
        attempt: int,
        scope: str = "job",
    ) -> FaultSpec | None:
        """The first ``scope`` spec that fires for this job/attempt."""
        for spec in self.specs:
            if spec.scope != scope:
                continue
            if spec.should_fire(self.seed, job_id, apps, attempt):
                return spec
        return None

    def maybe_fire(
        self,
        job_id: str,
        apps: Sequence[str],
        attempt: int,
        in_worker: bool,
    ) -> None:
        """Inject the planned job-scope fault for this job/attempt, if any.

        Called by the resilience executor at the top of every job
        attempt — in the pool worker for pooled execution, in the
        parent for serial execution (where ``crash`` and ``sigkill``
        degrade to :class:`InjectedCrash` because killing the parent
        would take the whole batch down, journal and all).
        """
        spec = self.pick(job_id, apps, attempt)
        if spec is None:
            return
        detail = f"{spec.kind} fault (job {job_id[:16]}, attempt {attempt})"
        if spec.kind == "exception":
            raise InjectedFault(f"injected {detail}")
        if spec.kind in ("crash", "sigkill"):
            if in_worker:
                if spec.kind == "sigkill":
                    os.kill(os.getpid(), signal.SIGKILL)
                os._exit(spec.exit_code)
            raise InjectedCrash(f"injected {detail}")
        if spec.kind in ("hang", "delay"):
            time.sleep(spec.seconds)

    def maybe_fire_service(
        self, job_id: str, apps: Sequence[str], attempt: int
    ) -> None:
        """Inject the planned ``scope="service"`` fault, if any.

        Called by the resilience executor *in the owning process* as a
        job is dispatched, whatever the execution mode — the hook the
        chaos-service harness uses to kill the scheduler daemon (and
        its HTTP API) at a deterministic point in a campaign.
        ``sigkill`` is taken literally here: the process dies by
        SIGKILL mid-batch, exactly like an external ``kill -9``.
        """
        spec = self.pick(job_id, apps, attempt, scope="service")
        if spec is None:
            return
        detail = (
            f"service-scope {spec.kind} fault "
            f"(job {job_id[:16]}, attempt {attempt})"
        )
        if spec.kind == "exception":
            raise InjectedFault(f"injected {detail}")
        if spec.kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        if spec.kind == "crash":
            os._exit(spec.exit_code)
        if spec.kind in ("hang", "delay"):
            time.sleep(spec.seconds)

    # ------------------------------------------------------------------
    # serialization (CLI chaos runs)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "specs": [asdict(spec) for spec in self.specs],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        specs = []
        for raw in data.get("specs", []):
            if raw.get("apps") is not None:
                raw = {**raw, "apps": tuple(raw["apps"])}
            specs.append(FaultSpec(**raw))
        return cls(specs=tuple(specs), seed=int(data.get("seed", 0)))

    def write(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


def plan_from_env() -> FaultPlan | None:
    """The fault plan named by ``REPRO_FAULT_PLAN``, if any.

    Read once per batch by the CLI layer; library callers pass plans
    explicitly.
    """
    path = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not path:
        return None
    return FaultPlan.from_file(path)


# ----------------------------------------------------------------------
# cache-corruption injection


def corrupt_cache_entry(cache, config, apps, mode: str = "garbage") -> Path:
    """Damage one persistent-cache entry in place; returns its path.

    Modes: ``garbage`` (overwrite with non-pickle bytes), ``truncate``
    (cut the pickle short, as a host crash without fsync would),
    ``empty`` (zero-length file), ``wrong-type`` (a valid pickle of the
    wrong payload type — exercises the schema check, not the pickle
    parser).  The entry must exist.
    """
    path = cache.path_for(config, apps)
    data = path.read_bytes()
    if mode == "garbage":
        path.write_bytes(b"\x00garbage, not a pickle\x00")
    elif mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "empty":
        path.write_bytes(b"")
    elif mode == "wrong-type":
        path.write_bytes(
            pickle.dumps({"schema": "not-a-MixResult"}, protocol=pickle.HIGHEST_PROTOCOL)
        )
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path


__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "corrupt_cache_entry",
    "plan_from_env",
]
