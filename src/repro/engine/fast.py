"""The fast execution engine: bit-identical cycle-skipping SMT core.

Profiling the reference loop on the paper's memory-bound mixes shows
81-90% of ticked cycles fetch nothing: every eligible thread holds a
µop that a full shared resource (issue queue or load/store queue)
keeps rejecting, while the DRAM system grinds through the misses that
will eventually free those resources.  The reference loop still pays
the full tick for each of those cycles — commit walk, eligibility
scan, policy sort, dispatch attempt — only to change almost nothing.

:class:`FastSMTCore` recognizes those stretches and replaces them with
a *stalled-window kernel*.  At the start of a window it proves that,
until some future cycle ``W``, no per-cycle observable can change:

* no event fires (the event-queue heap's head is ``>= W``),
* no thread's ROB head reaches its finish time (commit is a no-op),
* no blocked thread unblocks and no eligible thread's dispatch can
  start succeeding (the rejecting resource only drains via events),
* no telemetry/timeline sample falls due.

Inside the window the only state the reference loop would advance is
(a) each fetch-attempted thread's I-cache RNG stream — one draw per
thread per cycle, in fetch-policy order, bounded by the fetch-thread
cap — and (b) the per-cycle stall/rejection accounting and the commit
round-robin pointer.  The kernel performs exactly the RNG draws the
reference would (so the streams stay aligned bit-for-bit), accumulates
the accounting in closed form, and advances the clock.  An I-cache
miss inside the window ends it: that one cycle is replayed faithfully
(miss penalties, fetch-thread cap, per-thread disposition) and control
returns to the normal loop.

Anything the kernel cannot prove safe falls back to normal ticking;
an attached event tracer disables the fast loop entirely (gate events
are per-cycle observables).  Bit-identity is enforced by
``repro.engine.oracle`` and the ``engine-diff`` CI lane.
"""

from __future__ import annotations

from typing import Any

from repro.common.types import OpClass
from repro.cpu.core import SMTCore
from repro.cpu.fetch import (
    DGPolicy,
    DWarnPolicy,
    FetchStallPolicy,
    ICountPolicy,
    RoundRobinPolicy,
)
from repro.cpu.thread import FOREVER, Inflight

_FP_ALU = OpClass.FP_ALU
_FP_MULT = OpClass.FP_MULT
_LOAD = OpClass.LOAD
_STORE = OpClass.STORE
_BRANCH = OpClass.BRANCH

#: Fetch-policy classes whose ordering is a pure function of state
#: that cannot change inside a stalled window (thread ids, ``unissued``
#: counts, outstanding-miss sets, IQ occupancy).  Round-robin also
#: reads the cycle number; the kernel handles that with per-rotation
#: attempt tables.  Unknown (user-supplied) policies disable the
#: kernel: the loop still runs, one cycle at a time.
_WINDOW_SAFE_POLICIES = (
    RoundRobinPolicy,
    ICountPolicy,
    FetchStallPolicy,
    DGPolicy,
    DWarnPolicy,
)


# ----------------------------------------------------------------------
# shared µop streams
#
# A SyntheticStream's output is a pure function of its constructor
# inputs: the (singleton) AppProfile, thread id, scale, and the exact
# initial RNG state.  Experiment sweeps re-run identical streams many
# times — figure 10 replays every mix and every single-thread baseline
# once per scheduler — so the fast engine memoizes generated µops
# process-wide, keyed by those constructor inputs.  Uop objects are
# immutable after construction (the core wraps them in Inflight nodes),
# so the cached objects are shared directly; a repeat run replays the
# recorded prefix by list index and only falls back to the original
# generator when it runs longer than any previous run with the same
# key.

#: key -> [uops_so_far, backing_generator]; the backing generator is
#: the *first* stream seen for the key, kept so the list can be
#: extended from its exact mid-stream state.
_STREAM_MEMO: dict = {}

#: Stop admitting new streams once the memo holds this many µops
#: (~hundreds of MB of Uop objects); existing entries keep serving.
_STREAM_MEMO_CAP = 2_000_000


class _SharedStream:
    """Replay view over a memoized µop stream (see above)."""

    __slots__ = ("_entry", "_uops", "_pos", "_backing", "profile")

    def __init__(self, entry: tuple[list[Any], Any], backing: Any) -> None:
        self._entry = entry
        self._uops = entry[0]
        self._pos = 0
        self._backing = backing
        self.profile = backing.profile

    def next_uop(self) -> Any:
        pos = self._pos
        uops = self._uops
        if pos >= len(uops):
            uops.append(self._entry[1].next_uop())
        self._pos = pos + 1
        return uops[pos]

    def footprint(self) -> Any:
        # Region layout is fixed at construction, identical for every
        # stream instance with this memo key.
        return self._backing.footprint()


def _shared_stream(stream: Any) -> Any:
    """Wrap ``stream`` in a memoized replay view (or pass through)."""
    try:
        # AppProfile is a frozen dataclass: hashing by value keeps the
        # key deterministic (no id()) and still exact — two streams
        # with equal constructor inputs are behaviorally identical.
        key = (
            stream.profile,
            stream.thread_id,
            stream.scale,
            stream._rng.getstate(),
        )
        hash(key)
    except (AttributeError, TypeError):  # trace/custom streams: no memo
        return stream
    entry = _STREAM_MEMO.get(key)
    if entry is None:
        if sum(len(e[0]) for e in _STREAM_MEMO.values()) >= _STREAM_MEMO_CAP:
            return stream
        entry = ([], stream)
        _STREAM_MEMO[key] = entry
    return _SharedStream(entry, stream)


class FastSMTCore(SMTCore):
    """Drop-in :class:`SMTCore` with a cycle-skipping phase loop.

    Construction, statistics, and results are inherited unchanged;
    only how the clock advances differs, and that difference is
    observationally null (see the module docstring and
    ``docs/performance.md`` for the proof obligations).
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        for t in self.threads:
            t.stream = _shared_stream(t.stream)
        #: Per-thread bound-method/constant tables, indexed by thread
        #: id: the reference re-derives these on every fetch visit
        #: (attribute walk + bound-method creation); they are loop
        #: invariants.
        self._t_miss_rate = [
            t.stream.profile.icache_miss_rate for t in self.threads
        ]
        self._t_rng = [t.icache_rng.random for t in self.threads]
        self._t_next = [t.stream.next_uop for t in self.threads]
        #: Bumped by every event-side mutator of fetch-visible core
        #: state (issue-queue drains, finish-time resolution and the
        #: fetch unblocks it triggers).  Together with the hierarchy's
        #: ``l2_miss_version`` it lets the stalled-window kernel reuse
        #: a window derivation across event batches in O(1).
        self._fe_version = 0

    # ------------------------------------------------------------------
    # version-counted mutators: verbatim reference bodies plus the one
    # counter bump (inlined rather than delegated — both run once per
    # µop and the extra call layer is measurable; scheduled events bind
    # these overrides)

    def _release_iq(self, node: Any) -> None:
        self._fe_version += 1
        t = self.threads[node.thread_id]
        t.unissued -= 1
        opc = node.opc
        if opc is _FP_ALU or opc is _FP_MULT:
            self.fp_iq_used -= 1
            t.iq_fp -= 1
        else:
            self.int_iq_used -= 1
            t.iq_int -= 1
            now = self.event_queue.now
            if now != self._last_int_issue_cycle:
                self._last_int_issue_cycle = now
                self._int_issue_cycles += 1

    def _resolve(self, node: Any, finish: int) -> None:
        """The node's finish time became known; wake its dependents."""
        self._fe_version += 1
        node.finish = finish
        waiters = node.waiters
        if waiters:
            node.waiters = None
            for waiter in waiters:
                if waiter.__class__ is Inflight:
                    if finish > waiter.ready_lb:
                        waiter.ready_lb = finish
                    waiter.deps_left -= 1
                    if waiter.deps_left == 0:
                        self._schedule_issue(waiter)
                else:
                    waiter(finish)

    # ------------------------------------------------------------------
    # phase loop

    def _run_phase(self, per_thread_target: int, max_cycles: int) -> None:
        if self._tracer is not None:
            # Tracing records per-cycle gate/miss events; skipped cycles
            # would lose them.  Traced runs take the reference loop.
            SMTCore._run_phase(self, per_thread_target, max_cycles)
            return
        override = self._target_override
        for i, t in enumerate(self.threads):
            t.warmup_committed = t.committed
            t.target = per_thread_target if override is None else override[i]
            t.finish_cycle = None
        self._unfinished = len(self.threads)
        deadline = self.cycle + max_cycles
        next_sweep = self.cycle + self._CALENDAR_SWEEP
        event_queue = self.event_queue
        run_until = event_queue.run_until
        # Peeked directly instead of through peek_time(): this loop runs
        # once per non-skipped cycle and the heap's identity is stable
        # (heappush mutates in place).
        heap = event_queue._heap
        commit = self._commit
        fetch = self._fetch_fast
        maybe_skip = self._maybe_skip
        stalled_window = self._stalled_window
        int_cal = self._int_cal
        fp_cal = self._fp_cal
        sweep_interval = self._CALENDAR_SWEEP
        sampling = self._next_sample is not None
        kernel_ok = type(self.fetch_policy) in _WINDOW_SAFE_POLICIES
        while self._unfinished and self.cycle < deadline:
            cycle = self.cycle
            if heap and heap[0][0] <= cycle:
                run_until(cycle)
            else:
                event_queue._now = cycle
            commit(cycle)
            fetched = fetch(cycle)
            if sampling and cycle >= self._next_sample:
                self._sample(cycle)
                self._next_sample = cycle + self._sample_every
            cycle += 1
            self.cycle = cycle
            if cycle >= next_sweep:
                int_cal.advance_floor(cycle)
                fp_cal.advance_floor(cycle)
                next_sweep = cycle + sweep_interval
            if self._unfinished:
                if not fetched and kernel_ok and stalled_window(deadline):
                    # Events due at the (new) current cycle were already
                    # pumped in stall mode; the reference's _maybe_skip
                    # never jumps over due events, but it would observe
                    # pre-event state here — tick the cycle directly.
                    continue
                maybe_skip()
        if sampling:
            # Trailing partial-interval sample (same as the reference).
            self._sample(self.cycle)

    # ------------------------------------------------------------------
    # stalled-window kernel

    def _reject_key(self, uop: Any) -> str | None:
        """Which rejection counter a dispatch of ``uop`` would bump now.

        Mirrors the resource checks of :meth:`SMTCore._dispatch` in
        order (FP IQ / int IQ, then LQ / SQ) for a thread whose ROB is
        not full.  ``None`` means the dispatch would *succeed* — the
        caller must not treat the thread as stalled.
        """
        opc = uop.opc
        if opc is _FP_ALU or opc is _FP_MULT:
            if self.fp_iq_used >= self.params.fp_iq_size:
                return "iq"
            return None
        if self.int_iq_used >= self.params.int_iq_size:
            return "iq"
        if opc is _LOAD:
            if self.lq_used >= self.params.lq_size:
                return "lsq"
            return None
        if opc is _STORE:
            if self.sq_used >= self.params.sq_size:
                return "lsq"
            return None
        return None

    def _stalled_window(self, deadline: int) -> bool:
        """Advance across windows where no front-end progress is possible.

        Reproduces the per-cycle observable effects of the reference
        loop — RNG draws, stall/rejection accounting, commit-pointer
        rotation, ``event_queue.now`` — exactly, then jumps the clock.
        Stays in stall mode across event batches: when a window ends
        because an event falls due, the events are pumped here (exactly
        what the reference tick would do first at that cycle) and the
        window re-proven from the post-event state, so long memory
        stalls cost one window derivation per event batch instead of a
        full tick per cycle.  A derivation is even *reused* across
        batches when the pumped events provably touched none of its
        inputs: every event-side mutator of fetch-visible state bumps a
        version counter (``_fe_version`` here, ``l2_miss_version`` on
        the hierarchy), so DRAM-internal batches — bus wake-ups,
        controller pumps, MSHR retries — cost one integer compare.
        Returns True when at least one cycle was replaced; the caller's
        loop handles whatever ended stall mode.

        Returns True when events due at the *current* cycle were fired
        here without that cycle being replaced: the caller must then
        tick the cycle immediately instead of running ``_maybe_skip``
        (which would observe post-event state the reference's skip
        check never sees; with events due now it never jumps anyway).
        """
        event_queue = self.event_queue
        heap = event_queue._heap
        run_until = event_queue.run_until
        threads = self.threads
        nthreads = len(threads)
        stalls = self.stall_cycles
        rejections = self.dispatch_rejections
        params = self.params
        icache_penalty = params.icache_miss_penalty
        fetch_threads = params.fetch_threads
        policy = self.fetch_policy
        rotate = type(policy) is RoundRobinPolicy
        reject_key = self._reject_key
        hierarchy = self.hierarchy
        next_sample = self._next_sample  # frozen: only ticks sample
        miss_rates = self._t_miss_rate
        rngs = self._t_rng

        # Cached derivation, valid while the combined version counter
        # matches (no event mutated fetch-visible state — both counters
        # are monotonic, so the sum is change-equivalent) and the clock
        # stays short of ``base_end`` (the first cycle at which a
        # *non-event* input — unblock, commit, sample — changes).
        seen_version = -1
        base_end = 0
        blocked_n = robfull_n = n_order = n_eligible = 0
        rej_iq = rej_lsq = 0
        attempts: list | None = None
        stochastic = False
        single_scan = scans = rotations = None

        while True:
            cycle0 = self.cycle
            pumped = False
            if cycle0 >= deadline:
                return False
            if heap and heap[0][0] <= cycle0:
                # The reference tick at cycle0 starts by firing these;
                # fire them now so the window is proven against the
                # post-event state (occupancies, finish times).
                run_until(cycle0)
                pumped = True
            version = self._fe_version + hierarchy.l2_miss_version
            if version != seen_version or cycle0 >= base_end:
                seen_version = -1
                window_end = deadline
                blocked_n = 0
                robfull_n = 0
                eligible = []
                for t in threads:
                    fbu = t.fetch_blocked_until
                    if fbu > cycle0:
                        blocked_n += 1
                        if fbu < FOREVER and fbu < window_end:
                            window_end = fbu  # unblocks: classes change
                    elif len(t.rob) >= t.rob_size:
                        robfull_n += 1
                    else:
                        eligible.append(t)
                    rob = t.rob
                    if rob:
                        finish = rob[0].finish
                        if finish is not None and finish < window_end:
                            window_end = finish  # commit becomes possible
                if not eligible:
                    return pumped  # _maybe_skip's regime, not ours
                if next_sample is not None and next_sample < window_end:
                    window_end = next_sample
                if window_end <= cycle0:
                    return pumped
                order = policy.order(eligible, self, cycle0)
                rej_iq = 0
                rej_lsq = 0
                attempts = []
                stochastic = False
                stalled = True
                for t in order:
                    uop = t.pending_uop
                    if uop is None:
                        # The thread would fetch a fresh µop whose
                        # resource needs we cannot know without
                        # consuming the stream.
                        stalled = False
                        break
                    key = reject_key(uop)
                    if key is None:
                        stalled = False  # dispatch would succeed
                        break
                    if key == "iq":
                        rej_iq += 1
                    else:
                        rej_lsq += 1
                    tid = t.thread_id
                    mr = miss_rates[tid]
                    if mr:
                        stochastic = True
                    attempts.append((t, mr, rngs[tid], key))
                if not stalled:
                    return pumped
                n_order = len(attempts)
                n_eligible = len(eligible)
                single_scan = scans = rotations = None
                if stochastic:
                    # Round-robin rotates thread priority with the
                    # cycle number; draw order within a cycle does not
                    # matter for the per-thread RNG streams, but the
                    # fetch-thread cap on a miss cycle binds by
                    # position, so the true per-rotation order is kept.
                    if rotate and n_order > 1:
                        rotations = [
                            sorted(
                                attempts,
                                key=lambda a, s=s: (
                                    (a[0].thread_id - s) % nthreads
                                ),
                            )
                            for s in range(nthreads)
                        ]
                        scans = [
                            [
                                (rnd, mr, j)
                                for j, (_t, mr, rnd, _key) in enumerate(rot)
                                if mr
                            ]
                            for rot in rotations
                        ]
                    else:
                        single_scan = [
                            (rnd, mr, j)
                            for j, (_t, mr, rnd, _key) in enumerate(attempts)
                            if mr
                        ]
                base_end = window_end
                seen_version = version
            window_end = base_end
            if heap and heap[0][0] < window_end:
                window_end = heap[0][0]
            if window_end <= cycle0:
                # An event at cycle0 was pumped above, so the head is
                # beyond cycle0; this window is simply empty.
                return pumped

            # --- replay the window's cycles ------------------------------
            miss_cycle = -1
            if not stochastic:
                # No thread can miss the I-cache: pure arithmetic.
                span = window_end - cycle0
            elif single_scan is not None and len(single_scan) == 1:
                # One stochastic stream: scan it thread-major in a
                # tight loop (the other attempts never draw).
                rnd1, mr1, miss_at = single_scan[0]
                k = cycle0
                while k < window_end and rnd1() >= mr1:
                    k += 1
                if k < window_end:
                    miss_cycle = k
                    att = attempts
                    att[miss_at][0].fetch_blocked_until = k + icache_penalty
                    used = 1
                    failed_keys = [att[j][3] for j in range(miss_at)]
                    for j in range(miss_at + 1, n_order):
                        if used >= fetch_threads:
                            break
                        t2, mr2, rnd2, key2 = att[j]
                        if mr2 and rnd2() < mr2:
                            t2.fetch_blocked_until = k + icache_penalty
                            used += 1
                        else:
                            failed_keys.append(key2)
                span = (miss_cycle + 1 if miss_cycle >= 0 else window_end) - cycle0
            else:
                k = cycle0
                while k < window_end:
                    scan = (
                        single_scan
                        if single_scan is not None
                        else scans[k % nthreads]
                    )
                    miss_at = -1
                    for rnd, mr, j in scan:
                        if rnd() < mr:
                            miss_at = j
                            break
                    if miss_at < 0:
                        k += 1
                        continue
                    # -- miss cycle: replay its bookkeeping exactly --
                    miss_cycle = k
                    att = (
                        attempts
                        if single_scan is not None
                        else rotations[k % nthreads]
                    )
                    att[miss_at][0].fetch_blocked_until = k + icache_penalty
                    used = 1
                    # Threads ahead of the miss attempted and failed.
                    failed_keys = [att[j][3] for j in range(miss_at)]
                    for j in range(miss_at + 1, n_order):
                        if used >= fetch_threads:
                            break
                        t2, mr2, rnd2, key2 = att[j]
                        if mr2 and rnd2() < mr2:
                            t2.fetch_blocked_until = k + icache_penalty
                            used += 1
                        else:
                            failed_keys.append(key2)
                    break
                span = (miss_cycle + 1 if miss_cycle >= 0 else window_end) - cycle0

            # --- flush accounting for the replayed span ------------------
            # Miss-free cycles: every ordered thread attempts and is
            # rejected; eligible threads the policy gated out are "not
            # selected"; blocked / ROB-full threads accrue their
            # per-cycle disposition.  The miss cycle (if any) differs
            # only in who reached a dispatch attempt.
            plain = span - 1 if miss_cycle >= 0 else span
            stalls["fetch_blocked"] += span * blocked_n
            stalls["rob_full"] += span * robfull_n
            stalls["resource_full"] += plain * n_order
            stalls["not_selected"] += plain * (n_eligible - n_order)
            if rej_iq:
                rejections["iq"] += plain * rej_iq
            if rej_lsq:
                rejections["lsq"] += plain * rej_lsq
            if miss_cycle >= 0:
                stalls["resource_full"] += len(failed_keys)
                stalls["not_selected"] += n_eligible - len(failed_keys)
                for key2 in failed_keys:
                    rejections[key2] += 1
                # The replay itself just blocked the missing thread(s)
                # — a fetch-visible change no event-side counter saw.
                seen_version = -1
            self._commit_ptr = (self._commit_ptr + span) % nthreads
            new_cycle = cycle0 + span
            self.cycle = new_cycle
            event_queue._now = new_cycle - 1
            # Loop: if stall persists past window_end (event batch due,
            # miss blocked one thread, ...), the next iteration proves
            # and replays the next window; anything else returns.

    # ------------------------------------------------------------------
    # fetch / dispatch hot path

    def _fetch_fast(self, cycle: int) -> int:
        """The reference :meth:`SMTCore._fetch` with tracer branches
        dropped (the fast loop only runs untraced) and locals hoisted.
        Returns the number of µops dispatched this cycle, which the
        phase loop uses to decide whether a stalled window may have
        opened."""
        params = self.params
        stalls = self.stall_cycles
        eligible = []
        for t in self.threads:
            if t.fetch_blocked_until > cycle:
                stalls["fetch_blocked"] += 1
            elif len(t.rob) >= t.rob_size:
                stalls["rob_full"] += 1
            else:
                eligible.append(t)
        if not eligible:
            return 0
        order = self.fetch_policy.order(eligible, self, cycle)
        fetch_width = params.fetch_width
        fetch_threads = params.fetch_threads
        icache_penalty = params.icache_miss_penalty
        int_iq_size = params.int_iq_size
        fp_iq_size = params.fp_iq_size
        lq_size = params.lq_size
        sq_size = params.sq_size
        rejections = self.dispatch_rejections
        dispatch = self._dispatch
        miss_rates = self._t_miss_rate
        rngs = self._t_rng
        nexts = self._t_next
        # A rejected dispatch changes no state, so the resource check
        # is hoisted out of the call — unless the sanitizer has
        # wrapped ``_dispatch`` (instance attribute) to observe every
        # attempt, in which case all attempts go through the wrapper.
        precheck = "_dispatch" not in self.__dict__
        fetched = 0
        threads_used = 0
        dispatched_threads = set()
        resource_stalled: set[int] = set()
        for t in order:
            if threads_used >= fetch_threads:
                break
            if fetched >= fetch_width:
                break
            tid = t.thread_id
            miss_rate = miss_rates[tid]
            if miss_rate and rngs[tid]() < miss_rate:
                t.fetch_blocked_until = cycle + icache_penalty
                threads_used += 1
                continue
            taken = 0
            stream_next = nexts[tid]
            while fetched < fetch_width and taken < fetch_width:
                uop = t.pending_uop
                if uop is None:
                    uop = stream_next()
                if precheck:
                    opc = uop.opc
                    if opc is _FP_ALU or opc is _FP_MULT:
                        key = (
                            "iq" if self.fp_iq_used >= fp_iq_size else None
                        )
                    elif self.int_iq_used >= int_iq_size:
                        key = "iq"
                    elif opc is _LOAD and self.lq_used >= lq_size:
                        key = "lsq"
                    elif opc is _STORE and self.sq_used >= sq_size:
                        key = "lsq"
                    else:
                        key = None
                    if key is not None:
                        rejections[key] += 1
                        t.pending_uop = uop
                        if not taken:
                            resource_stalled.add(t.thread_id)
                        break
                outcome = dispatch(t, uop, cycle)
                if not outcome:
                    t.pending_uop = uop
                    if not taken:
                        resource_stalled.add(t.thread_id)
                    break
                t.pending_uop = None
                fetched += 1
                taken += 1
                if outcome == 2:
                    break  # redirect: nothing behind the branch is fetched
                if len(t.rob) >= t.rob_size:
                    break
            if taken:
                threads_used += 1
                dispatched_threads.add(t.thread_id)
        for t in eligible:
            tid = t.thread_id
            if tid in dispatched_threads:
                continue
            if tid in resource_stalled:
                stalls["resource_full"] += 1
            else:
                stalls["not_selected"] += 1
        return fetched

    def _dispatch(self, t: Any, uop: Any, cycle: int) -> int:
        """Reference :meth:`SMTCore._dispatch` with enum-property calls
        replaced by identity checks and params hoisted — same outcomes,
        same counter updates, bit for bit."""
        opc = uop.opc
        if len(t.rob) >= t.rob_size:
            return False
        params = self.params
        is_fp = opc is _FP_ALU or opc is _FP_MULT
        if is_fp:
            if self.fp_iq_used >= params.fp_iq_size:
                self.dispatch_rejections["iq"] += 1
                return 0
        elif self.int_iq_used >= params.int_iq_size:
            self.dispatch_rejections["iq"] += 1
            return 0
        if opc is _LOAD and self.lq_used >= params.lq_size:
            self.dispatch_rejections["lsq"] += 1
            return 0
        if opc is _STORE and self.sq_used >= params.sq_size:
            self.dispatch_rejections["lsq"] += 1
            return 0

        mispredicted = opc is _BRANCH and self._branch_mispredicted(t, uop)
        node = Inflight(
            t.thread_id,
            t.seq,
            opc,
            uop.addr,
            mispredicted,
            cycle + params.frontend_latency,
        )
        dep1 = uop.dep1
        if dep1:
            producer = t.producer(dep1)
            if producer is not None:
                finish = producer.finish
                if finish is None:
                    node.deps_left += 1
                    producer.add_waiter(node)
                elif finish > node.ready_lb:
                    node.ready_lb = finish
        dep2 = uop.dep2
        if dep2:
            producer = t.producer(dep2)
            if producer is not None:
                finish = producer.finish
                if finish is None:
                    node.deps_left += 1
                    producer.add_waiter(node)
                elif finish > node.ready_lb:
                    node.ready_lb = finish

        t.ring[t.seq % len(t.ring)] = node
        t.seq += 1
        t.rob.append(node)
        t.fetched += 1
        t.unissued += 1
        if is_fp:
            self.fp_iq_used += 1
            t.iq_fp += 1
        else:
            self.int_iq_used += 1
            t.iq_int += 1
        if opc is _LOAD:
            self.lq_used += 1
        elif opc is _STORE:
            self.sq_used += 1
        if mispredicted:
            t.fetch_blocked_until = FOREVER
            node.add_waiter(self._make_branch_unblock(t))
            if self._tracer is not None:
                self._tracer.emit(
                    cycle, "fetch.redirect", "cpu.fetch", t.thread_id,
                    args={"reason": "branch-mispredict"},
                )
        if node.deps_left == 0:
            self._schedule_issue(node)
        return 2 if mispredicted else 1
