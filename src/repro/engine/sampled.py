"""The sampled execution engine: detailed windows + functional fast-forward.

SimPoint-style statistical sampling for the growth path the ROADMAP's
``[speed]`` item names: instead of simulating every instruction cycle
by cycle, :class:`SampledSMTCore` alternates

* **detailed windows** — full cycle-accurate simulation, reusing
  :class:`~repro.engine.fast.FastSMTCore`'s stalled-window kernel
  unchanged, during which CPI, DRAM traffic, and stall accounting are
  *measured*; and
* **fast-forward regions** — every thread's µop stream is advanced
  functionally: caches, TLBs, and DRAM row buffers stay warm through
  the hierarchy's stat-less ``warm_access``/``warm_line`` path and the
  branch predictor keeps training, while the per-cycle pipeline, bus,
  and scheduler work is skipped entirely.  Simulated time does **not**
  advance during fast-forward (the region is timeless), which keeps the
  event queue, slot calendars, and outstanding MSHR entries coherent
  with the next detailed window.

Estimation mirrors the reference's measurement semantics (a *crossing*
estimator): each thread's nominal stream progress — window commits,
run-ahead included, plus fast-forward skips — accumulates until it
crosses the instruction budget, and the estimated cycle total at that
crossing is the thread's result, exactly as the reference records
``finish_cycle``.  Threads advance through fast-forward regions at
their own estimated rates (mirroring real run-ahead), and each
region's cycles are charged at the symmetric-neighborhood mean CPI of
the surrounding detailed windows, with a DRAM-miss-rate regression
adjustment once enough windows exist.  The per-window CPI population
yields a confidence interval via
:class:`repro.experiments.repeat.MetricSummary`'s machinery.

Sampled results are therefore **estimates**: deterministic (same seed
and sampling parameters give byte-identical output) but *not*
bit-identical to the reference/fast engines, and excluded from the
bit-identity contract.  The engine-diff oracle checks them in its
bounded-error mode instead (``repro engine-diff --baseline reference
--candidate sampled --tolerance ...``); see ``docs/performance.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigError
from repro.cpu.stats import CoreResult, ThreadResult
from repro.engine.fast import _BRANCH, _LOAD, _STORE, FastSMTCore


@dataclass(frozen=True)
class SamplingParams:
    """Knobs of the sampled engine's window schedule.

    The schedule is periodic: ``detail_instructions`` measured in full
    detail, then ``ff_instructions`` fast-forwarded, then
    ``window_warmup`` detailed-but-discarded instructions to refill the
    pipeline/queues before the next measured window.  The global
    warm-up phase is handled the same way: all but its last
    ``window_warmup`` instructions are fast-forwarded.

    ``ff_instructions=0`` degenerates to full detail in windowed form
    (estimates equal measurements exactly).  These parameters change
    the (estimated) results, so they are part of the config cache key
    whenever the sampled engine is selected.
    """

    #: Instructions measured per detailed window, per thread.  Window
    #: CPI in memory-bound mixes is heavy-tailed (rare long-stall
    #: bursts), so short windows systematically under-sample the tail;
    #: 2000 is the smallest size that measured unbiased in practice.
    detail_instructions: int = 2000
    #: Instructions fast-forwarded between windows, for the pacing
    #: (slowest-remaining) thread; other threads advance through the
    #: same estimated wall time at their own rates.
    ff_instructions: int = 18000
    #: Detailed-but-discarded instructions after each fast-forward
    #: region (pipeline/queue refill before measurement resumes).
    window_warmup: int = 1000
    #: Fast-forward gaps are charged at the mean CPI of up to this many
    #: detailed windows on *each* side (symmetric, so a linear drift in
    #: the system's CPI cancels); larger values damp per-window noise
    #: at the cost of locality.
    gap_smoothing: int = 2

    def __post_init__(self) -> None:
        if self.detail_instructions < 1:
            raise ConfigError(
                f"detail_instructions must be >= 1, "
                f"got {self.detail_instructions}"
            )
        if self.ff_instructions < 0:
            raise ConfigError(
                f"ff_instructions must be >= 0, got {self.ff_instructions}"
            )
        if self.window_warmup < 0:
            raise ConfigError(
                f"window_warmup must be >= 0, got {self.window_warmup}"
            )
        if self.gap_smoothing < 1:
            raise ConfigError(
                f"gap_smoothing must be >= 1, got {self.gap_smoothing}"
            )

    def cache_key(self) -> tuple:
        return (
            self.detail_instructions,
            self.ff_instructions,
            self.window_warmup,
            self.gap_smoothing,
        )


class SampledSMTCore(FastSMTCore):
    """Statistically sampled :class:`~repro.cpu.core.SMTCore`.

    Inherits :class:`FastSMTCore`'s construction and detailed-window
    machinery wholesale (detailed windows run the same cycle-skipping
    kernel); only :meth:`run` differs, replacing the single measured
    phase with the window/fast-forward schedule and extrapolation.
    """

    def __init__(self, *args: Any, sampling: SamplingParams | None = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.sampling = sampling if sampling is not None else SamplingParams()

    # ------------------------------------------------------------------
    # functional fast-forward

    #: Instructions each thread advances per round of the interleaved
    #: fast-forward loop.  Fine enough that shared-cache LRU order
    #: reflects the real temporal interleaving of the threads (warming
    #: one thread's whole region at a time would leave its entire
    #: working set most-recent and make it race in the next window),
    #: coarse enough to keep the loop overhead negligible.
    _FF_CHUNK = 64

    #: Minimum window population before the gap-CPI predictor trusts
    #: an OLS slope over the flat symmetric mean (see :meth:`run`).
    _REGRESSION_MIN_WINDOWS = 8

    def _fast_forward(self, counts: list[int]) -> list[int]:
        """Advance thread ``i`` by ``counts[i]`` instructions, timelessly.

        Returns the per-thread count of loads that missed every cache
        level and reached DRAM — the covariate of the gap-CPI
        predictor (see :meth:`run`).

        Consumes the threads' µop streams in program order (starting
        with any µop the last detailed window left pending),
        interleaved proportionally in chunks so shared cache/row-buffer
        state sees the threads' accesses in realistic relative order —
        a fast thread's stream drains correspondingly faster than a
        slow one's through the whole region, just as it would under
        real execution (warming one thread's whole region at a time
        would leave its entire working set most-recent in the shared
        LRU stacks and make it race in the next window).  Loads/stores
        warm the data-side hierarchy and resolved branches train the
        predictor/BTB.  No cycles pass, no events fire, no statistics
        are recorded.
        """
        misses = [0] * len(counts)
        total = max(counts, default=0)
        if total <= 0:
            return misses
        nexts = self._t_next
        warm = self.hierarchy.warm_access
        predictors = self._predictors
        btbs = self._btbs
        rounds = -(-total // self._FF_CHUNK)
        plan = []
        for t in self.threads:
            tid = t.thread_id
            plan.append([
                tid,
                nexts[tid],
                predictors[tid] if predictors is not None else None,
                btbs[tid] if btbs is not None else None,
                t.pending_uop,
                0,  # instructions consumed so far
            ])
        for r in range(1, rounds + 1):
            for slot, st in enumerate(plan):
                goal = counts[slot] * r // rounds
                step = goal - st[5]
                if step <= 0:
                    continue
                tid, stream_next, predictor, btb, uop, _ = st
                for _ in range(step):
                    if uop is None:
                        uop = stream_next()
                    opc = uop.opc
                    if opc is _LOAD:
                        if warm(uop.addr, tid):
                            misses[slot] += 1
                    elif opc is _STORE:
                        # Write-allocate: a store missing every level
                        # fetches its line from DRAM just like a load,
                        # so it joins the region's DRAM-miss tally.
                        if warm(uop.addr, tid, write=True):
                            misses[slot] += 1
                    elif (
                        predictor is not None and opc is _BRANCH and uop.pc
                    ):
                        predictor.update(uop.pc, uop.taken)
                        if uop.taken:
                            btb.lookup_and_update(uop.pc)
                    uop = None
                st[4] = uop
                st[5] = goal
        for t, st in zip(self.threads, plan):
            t.pending_uop = st[4]
        return misses

    # ------------------------------------------------------------------
    # public driver

    def run(
        self,
        instructions_per_thread: int,
        warmup_instructions: int = 0,
        max_cycles: int = 1_000_000_000,
    ) -> CoreResult:
        """Estimate the full run from sampled detailed windows.

        Mirrors :meth:`SMTCore.run`'s result shape: per-thread
        ``cycles`` (and the core-wide total) are measured cycles plus
        the extrapolated cost of the fast-forwarded instructions at the
        preceding window's CPI; ``dram_accesses`` are the measured
        window traffic plus the warm-path load misses observed while
        fast-forwarding (each is a load that missed every cache level,
        i.e. would have gone to DRAM in the timed model).
        ``extra["sampling"]`` records the window schedule and the CPI
        confidence interval.
        """
        # Local import: repeat -> runner -> config -> engine package
        # would otherwise be circular at module-import time.
        from repro.experiments.repeat import MetricSummary

        if instructions_per_thread < 1:
            raise ConfigError("instructions_per_thread must be >= 1")
        p = self.sampling
        detail = p.detail_instructions
        ff = p.ff_instructions
        wwarm = p.window_warmup

        threads = self.threads
        n = len(threads)
        budget = instructions_per_thread
        # Per-thread CPI estimates (commits per wall cycle, inverted),
        # refreshed by every detailed window; they set the *relative
        # rates* at which the threads' streams advance through
        # fast-forward regions.  In real execution every thread runs
        # continuously, so while the slowest thread covers a region's
        # nominal instructions, a faster thread covers proportionally
        # more of its own stream (the reference's warm-up run-ahead is
        # exactly this effect); skipping all streams in lock-step would
        # measure every later window at badly mis-aligned positions.
        cpi_est = [1.0] * n

        if warmup_instructions:
            if ff > 0:
                # Fast-forward the bulk of the warm-up (it exists to
                # warm caches/row buffers, exactly what the functional
                # path does).  A short detailed probe first establishes
                # the threads' relative rates, then the skip advances
                # the slowest thread to the warm tail and the others
                # proportionally further; the last window_warmup
                # instructions run in detail to refill the pipeline.
                tail = min(warmup_instructions, wwarm)
                probe = min(detail, max(0, warmup_instructions - tail))
                probe_commits = [0] * n
                if probe:
                    c0 = self.cycle
                    committed0 = [t.committed for t in threads]
                    self._run_phase(probe, max_cycles)
                    wall = max(1, self.cycle - c0)
                    probe_commits = [
                        max(1, t.committed - committed0[i])
                        for i, t in enumerate(threads)
                    ]
                    cpi_est = [wall / c for c in probe_commits]
                slow = max(range(n), key=lambda i: cpi_est[i])
                skip = warmup_instructions - tail - probe_commits[slow]
                if skip > 0:
                    wall_skip = skip * cpi_est[slow]
                    self._fast_forward(
                        [
                            max(0, round(wall_skip / cpi_est[i]))
                            for i in range(n)
                        ]
                    )
                if tail:
                    self._run_phase(tail, max_cycles)
            else:
                self._run_phase(warmup_instructions, max_cycles)
            self.hierarchy.reset_stats()

        start = self.cycle
        issue_cycles_base = self._int_issue_cycles
        stall_base = dict(self.stall_cycles)
        rejection_base = dict(self.dispatch_rejections)
        # Crossing estimator.  The reference measures thread i over its
        # *own* first-``budget``-commits interval — a transient average
        # (the simulated system drifts as footprints grow), so a
        # sampled estimate must preserve that interval structure, not
        # average over the whole run.  We therefore track each thread's
        # nominal stream progress (window commits — run-ahead included,
        # those are real budget instructions — plus fast-forward skips)
        # and accumulate estimated cycles until progress crosses the
        # budget; the cycle total at the crossing *is* the thread's
        # cycles estimate, exactly as the reference records
        # ``finish_cycle`` at its target crossing.  Fast-forward gaps
        # are charged at the mean of the surrounding two windows' CPIs
        # (centered extrapolation cancels the first-order drift a
        # trailing-window extrapolation would systematically lag).
        progress = [0] * n         # nominal instructions advanced
        walls = [0.0] * n          # window cycles up to the crossing
        crossed = [False] * n
        commit_acc = [0] * n       # pre-crossing window commits
        dram_acc = [0] * n         # pre-crossing window DRAM loads
        ff_dram = [0.0] * n        # warm-path DRAM misses across gaps
        win_cpis: list[list[float]] = []  # per window: per-thread CPI
        win_x: list[list[float]] = []     # per window: DRAM loads/instr
        win_pos: list[list[int]] = []     # per window: progress at start
        # Gap charging is deferred to the end of the run: a gap's
        # nominal instructions advance ``progress`` immediately (so
        # window targets see the true remainder), but its cycles are
        # charged only once the whole window-CPI series is known, at
        # the mean CPI of up to ``gap_smoothing`` windows on each side.
        # Each record is (index of the window after the gap, per-thread
        # instructions to charge — zero for already-crossed threads —
        # and the per-thread warm DRAM-miss rate across the region).
        gap_recs: list[tuple[int, list[int], list[float]]] = []
        window_cpis: list[float] = []  # aggregate wall CPI per window
        measured = 0               # scheduled window instructions/thread
        skipped = 0                # gap instructions (pacing thread)
        reached_all = True

        ratio = [1.0] * n  # last window's commits per target instruction
        while not all(crossed):
            r_max = max(
                budget - progress[i] for i in range(n) if not crossed[i]
            )
            detail_w = min(detail, r_max)
            # Per-thread targets: a thread whose remaining budget is
            # within reach of this window (predicted from its last
            # run-ahead ratio, with slack) gets exactly that remainder
            # as its target, so its finish_cycle records the *exact*
            # budget-crossing cycle — no interpolation error.  Distant
            # and already-crossed threads run at the window target.
            targets = [detail_w] * n
            for i in range(n):
                if crossed[i]:
                    continue
                left = budget - progress[i]
                if left <= detail_w or left <= 1.5 * ratio[i] * detail_w:
                    targets[i] = left
            win_pos.append(list(progress))
            c0 = self.cycle
            committed0 = [t.committed for t in threads]
            dram0 = dict(self.hierarchy._dram_loads_per_thread)
            self._target_override = targets
            try:
                self._run_phase(detail_w, max_cycles)
            finally:
                self._target_override = None
            wall = max(1, self.cycle - c0)
            c1 = self.cycle
            dram1 = self.hierarchy._dram_loads_per_thread
            commits = [
                max(1, t.committed - committed0[i])
                for i, t in enumerate(threads)
            ]
            drams = [
                dram1.get(t.thread_id, 0) - dram0.get(t.thread_id, 0)
                for t in threads
            ]
            win_cpis.append([wall / c for c in commits])
            win_x.append(
                [drams[i] / commits[i] for i in range(n)]
            )
            tail_rows = win_cpis[-min(p.gap_smoothing, len(win_cpis)):]
            cpi_est = [
                sum(row[i] for row in tail_rows) / len(tail_rows)
                for i in range(n)
            ]
            window_cpis.append(wall / detail_w)
            measured += detail_w
            if any(t.finish_cycle is None for t in threads):
                reached_all = False  # hit max_cycles mid-window
            # Settle this window's commits.
            for i in range(n):
                if crossed[i]:
                    continue
                left = budget - progress[i]
                t = threads[i]
                if commits[i] >= left:
                    if targets[i] == left and t.finish_cycle is not None:
                        # Target was the exact remainder: finish_cycle
                        # IS the crossing cycle.
                        walls[i] += t.finish_cycle - c0
                    else:
                        # Crossed via run-ahead past a window target
                        # (the reach prediction missed): finish_cycle
                        # marks the target commit, the remainder is
                        # interpolated over the run-ahead tail.
                        f = (
                            t.finish_cycle
                            if t.finish_cycle is not None
                            else c1
                        )
                        ahead = commits[i] - targets[i]
                        walls[i] += (f - c0) + (
                            (c1 - f) * (left - targets[i]) / ahead
                            if ahead
                            else 0.0
                        )
                    progress[i] = budget
                    crossed[i] = True
                else:
                    walls[i] += wall
                    progress[i] += commits[i]
                    ratio[i] = commits[i] / detail_w
                commit_acc[i] += commits[i]
                dram_acc[i] += drams[i]
            if all(crossed) or not reached_all:
                break
            # The pacing thread — the one with the most estimated wall
            # time left — defines the gap: it skips ff instructions
            # (less one full detailed window, so it always ends inside
            # a measured window) and the gap's wall duration is that
            # skip at its estimated CPI.  Every other thread's stream
            # advances through the same wall duration at its own rate.
            pace = max(
                (i for i in range(n) if not crossed[i]),
                key=lambda i: (budget - progress[i]) * cpi_est[i],
            )
            ff_w = min(ff, max(0, budget - progress[pace] - detail))
            if not ff_w:
                continue
            wall_gap = ff_w * cpi_est[pace]
            counts = [
                max(0, round(wall_gap / cpi_est[i])) for i in range(n)
            ]
            counts[pace] = ff_w
            ff_misses = self._fast_forward(counts)
            gxs = [
                ff_misses[i] / counts[i] if counts[i] else 0.0
                for i in range(n)
            ]
            skipped += ff_w
            warm_commits = [0] * n
            if wwarm:
                # Refill the pipeline/queues in detail, discarded:
                # absorbs the burst-commit of pre-fast-forward ROB
                # contents and rebuilds queue contention before
                # measurement resumes.  Its commits are real budget
                # instructions, so they join the gap's nominal length.
                committed0 = [t.committed for t in threads]
                self._run_phase(wwarm, max_cycles)
                if any(t.finish_cycle is None for t in threads):
                    reached_all = False
                    break
                warm_commits = [
                    t.committed - committed0[i]
                    for i, t in enumerate(threads)
                ]
            glens = [0] * n
            for i in range(n):
                if crossed[i]:
                    continue
                g = counts[i] + warm_commits[i]
                left = budget - progress[i]
                if g >= left:
                    # The crossing falls inside this gap: charge only
                    # the remainder.
                    glens[i] = left
                    progress[i] = budget
                    crossed[i] = True
                else:
                    glens[i] = g
                    progress[i] += g
                # Gap DRAM traffic: the warm path already counted each
                # all-levels load miss; prorate by the charged fraction
                # so instructions past the crossing don't count (the
                # reference stops a thread's tally at its crossing).
                ff_dram[i] += ff_misses[i] * (
                    glens[i] / max(1, counts[i] + warm_commits[i])
                )
            gap_recs.append((len(win_cpis), glens, gxs))

        # Charge every gap at a symmetric-neighborhood mean CPI with a
        # miss-rate regression adjustment.  A gap between windows w-1
        # and w starts from, per thread, the mean CPI over windows
        # [w-k, w+k) with k clamped to what exists on both sides —
        # symmetric, so a linear drift in CPI cancels; k>1 damps
        # single-window noise, which a gap (typically several windows
        # long) would otherwise amplify.  The mean is then shifted by
        # the thread's fitted CPI-per-DRAM-miss-rate slope times how
        # far the gap's own (functionally warmed) miss rate sits from
        # the neighborhood's: window-CPI fluctuations in memory-bound
        # mixes are mostly miss-rate driven, and the warm path observes
        # the gap's miss rate directly, so the regression explains
        # variance a flat mean would turn into estimation error.
        k_max = p.gap_smoothing
        n_win = len(win_cpis)
        charged = [0.0] * n
        # The slope fit needs a real population behind it: on a handful
        # of windows OLS chases noise and the "adjustment" amplifies
        # exactly the fluctuations the symmetric mean damps.
        slopes = [0.0] * n
        for i in range(n):
            if n_win < self._REGRESSION_MIN_WINDOWS:
                break
            xs = [row[i] for row in win_x]
            ys = [row[i] for row in win_cpis]
            mx = sum(xs) / n_win
            my = sum(ys) / n_win
            vx = sum((x - mx) ** 2 for x in xs)
            if vx > 0.0:
                slopes[i] = (
                    sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / vx
                )
        for w, glens, gxs in gap_recs:
            k = min(k_max, w, n_win - w)
            lo, hi = (w - k, w + k) if k else (max(0, w - k_max), w)
            span = range(lo, hi)
            for i in range(n):
                if glens[i]:
                    mean_y = sum(win_cpis[j][i] for j in span) / len(span)
                    mean_x = sum(win_x[j][i] for j in span) / len(span)
                    pred = mean_y + slopes[i] * (gxs[i] - mean_x)
                    ys = [row[i] for row in win_cpis]
                    # Guard extrapolation: a gap should not be charged
                    # far outside the observed window-CPI range.
                    pred = min(max(pred, 0.5 * min(ys)), 1.5 * max(ys))
                    charged[i] += glens[i] * pred

        # Window-level diagnostics, kept for tests and tooling.
        self.win_cpis = win_cpis
        self.win_pos = win_pos

        snapshot = self.hierarchy.snapshot()
        results = []
        for i, t in enumerate(threads):
            if crossed[i]:
                committed = budget
            else:  # hit max_cycles: report what was actually observed
                committed = min(progress[i], budget)
            results.append(
                ThreadResult(
                    thread_id=t.thread_id,
                    app_name=t.app_name,
                    committed=committed,
                    cycles=max(1, round(walls[i] + charged[i])),
                    dram_accesses=round(dram_acc[i] + ff_dram[i]),
                )
            )
        # The run ends when the slowest thread crosses its budget; the
        # reference loop notices completion one cycle after the final
        # commit, so a finished run reports last-crossing + 1.
        total_cycles = max(r.cycles for r in results) + (1 if reached_all else 0)
        elapsed = max(1, self.cycle - start)
        coverage = (self._int_issue_cycles - issue_cycles_base) / elapsed
        summary = MetricSummary("window_cpi", tuple(window_cpis))
        nw = len(window_cpis)
        ci95_rel = (
            1.96 * summary.stdev / math.sqrt(nw) / summary.mean
            if nw > 1 and summary.mean
            else 0.0
        )
        registry = self._registry
        if registry is not None:
            registry.counter("cpu.cycles").add(total_cycles)
            registry.gauge("cpu.int_issue_coverage").set(min(1.0, coverage))
            registry.add_counters(
                "cpu.stall",
                {k: v - stall_base[k] for k, v in self.stall_cycles.items()},
            )
            registry.add_counters(
                "cpu.dispatch_reject",
                {
                    k: v - rejection_base[k]
                    for k, v in self.dispatch_rejections.items()
                },
            )
            for r in results:
                prefix = f"cpu.t{r.thread_id}"
                registry.counter(f"{prefix}.instructions").add(r.committed)
                registry.counter(f"{prefix}.dram_accesses").add(
                    r.dram_accesses
                )
                registry.gauge(f"{prefix}.ipc").set(r.committed / r.cycles)
        return CoreResult(
            cycles=total_cycles,
            threads=tuple(results),
            reached_all_targets=reached_all,
            fetch_policy=self.fetch_policy.name,
            extra={
                "int_issue_coverage": min(1.0, coverage),
                "stall_cycles": {
                    k: v - stall_base[k]
                    for k, v in self.stall_cycles.items()
                },
                "dispatch_rejections": {
                    k: v - rejection_base[k]
                    for k, v in self.dispatch_rejections.items()
                },
                "sampling": {
                    "windows": nw,
                    "detail_instructions": detail,
                    "ff_instructions": ff,
                    "window_warmup": wwarm,
                    "gap_smoothing": p.gap_smoothing,
                    "measured_instructions": measured,
                    "measured_fraction": measured / max(1, measured + skipped),
                    "cpi_mean": summary.mean,
                    "cpi_stdev": summary.stdev,
                    "cpi_ci95_rel": ci95_rel,
                },
            },
        )
