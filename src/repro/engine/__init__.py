"""Selectable execution engines for the simulator.

Three engines can run a simulation:

* ``"reference"`` — the plain :class:`repro.cpu.core.SMTCore` loop,
  kept deliberately simple: one inlined tick per simulated cycle.
* ``"fast"`` — :class:`repro.engine.fast.FastSMTCore`, which replaces
  stalled stretches of the tick loop with a closed-form kernel (cycle
  skipping plus bulk stall accounting) and trims per-cycle dispatch
  overhead.  It is **bit-identical** to the reference by contract:
  every ``MixResult`` field, every RNG draw, every stall counter.
* ``"sampled"`` — :class:`repro.engine.sampled.SampledSMTCore`, which
  alternates detailed windows (the fast kernel) with functional
  fast-forward and *extrapolates* the full-run metrics.  Sampled
  results are deterministic **estimates**: explicitly excluded from
  the bit-identity contract, checked instead against a per-metric
  error bound (see below).  Opt-in only — ``fast`` stays the default.

The contracts are enforced, not assumed: ``repro.engine.oracle`` (and
the ``repro engine-diff`` CLI subcommand / CI lanes) runs engine pairs
over the fig10 sweep — exact mode fails on the first diverging field,
bounded-error mode fails when a metric's relative error exceeds its
tolerance.  See ``docs/performance.md``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.cpu.core import SMTCore
from repro.engine.fast import FastSMTCore
from repro.engine.sampled import SampledSMTCore, SamplingParams

#: Engine names accepted by :class:`repro.experiments.config.SystemConfig`.
ENGINE_NAMES = ("reference", "fast", "sampled")

#: Engines whose outputs are bit-identical to the reference by
#: contract; anything else produces estimates and is checked against a
#: tolerance instead (see repro.engine.oracle).
EXACT_ENGINES = ("reference", "fast")

_ENGINES: dict[str, type[SMTCore]] = {
    "reference": SMTCore,
    "fast": FastSMTCore,
    "sampled": SampledSMTCore,
}


def core_class(engine: str) -> type[SMTCore]:
    """The SMT-core class implementing the named engine."""
    try:
        return _ENGINES[engine]
    except KeyError:
        raise ConfigError(
            f"unknown engine {engine!r}; available: {ENGINE_NAMES}"
        ) from None


__all__ = [
    "ENGINE_NAMES",
    "EXACT_ENGINES",
    "FastSMTCore",
    "SampledSMTCore",
    "SamplingParams",
    "core_class",
]
