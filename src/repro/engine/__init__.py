"""Selectable execution engines for the simulator.

Two engines run every simulation:

* ``"reference"`` — the plain :class:`repro.cpu.core.SMTCore` loop,
  kept deliberately simple: one inlined tick per simulated cycle.
* ``"fast"`` — :class:`repro.engine.fast.FastSMTCore`, which replaces
  stalled stretches of the tick loop with a closed-form kernel (cycle
  skipping plus bulk stall accounting) and trims per-cycle dispatch
  overhead.  It is **bit-identical** to the reference by contract:
  every ``MixResult`` field, every RNG draw, every stall counter.

The contract is enforced, not assumed: ``repro.engine.oracle`` (and
the ``repro engine-diff`` CLI subcommand / CI lane) runs both engines
over the fig10 sweep and fails loudly on the first diverging field.
See ``docs/performance.md``.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.cpu.core import SMTCore
from repro.engine.fast import FastSMTCore

#: Engine names accepted by :class:`repro.experiments.config.SystemConfig`.
ENGINE_NAMES = ("reference", "fast")

_ENGINES: dict[str, type[SMTCore]] = {
    "reference": SMTCore,
    "fast": FastSMTCore,
}


def core_class(engine: str) -> type[SMTCore]:
    """The SMT-core class implementing the named engine."""
    try:
        return _ENGINES[engine]
    except KeyError:
        raise ConfigError(
            f"unknown engine {engine!r}; available: {ENGINE_NAMES}"
        ) from None


__all__ = ["ENGINE_NAMES", "FastSMTCore", "core_class"]
