"""Differential oracle: prove the fast engine bit-identical.

"Fast is a lie unless the diff lane is green."  The fast engine's
entire value rests on producing *exactly* the reference results; this
module is the instrument that checks it.  It runs the same
configuration under both engines and compares the resulting
:class:`~repro.experiments.runner.MixResult` structures field by
field — every counter, every per-thread statistic, every nested
dataclass — reporting the precise path of the first divergences
instead of a bare boolean.

The oracle has two modes, selected by whether a :class:`Tolerance` is
supplied:

* **exact** (the default, and the only sound mode for the ``fast``
  engine): structural field-by-field comparison, floats compared with
  ``==`` — both engines must perform the same arithmetic on the same
  values in the same order; any epsilon would hide a real ordering
  divergence.
* **bounded-error** (for the ``sampled`` engine, whose results are
  estimates and explicitly outside the bit-identity contract): the
  headline metrics — aggregate CPI, per-thread CPI, per-thread DRAM
  accesses — must sit within per-metric relative-error thresholds.

Used three ways:

* ``repro engine-diff`` (CLI) sweeps the fig10 configuration space —
  every memory-bound mix crossed with every scheduler the figure
  plots, plus single-config variations — and exits non-zero on any
  divergence.  CI runs this as its own lane (and a second, tolerance
  lane for the sampled engine).
* ``tests/engine/test_oracle.py`` runs a reduced sweep in tier-1.
* ad-hoc: ``compare_engines(config, apps)`` for any configuration a
  developer suspects.

Comparisons deliberately bypass the :class:`Runner` result cache:
``SystemConfig.cache_key()`` excludes the engine field for the exact
engines (bit-identity is what *makes* that sharing sound), so a cached
result would compare one engine's output against itself and prove
nothing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import ConfigError
from repro.engine import ENGINE_NAMES
from repro.experiments.config import SystemConfig
from repro.experiments.runner import MixResult, run_mix
from repro.workloads.mixes import MIXES

#: Float comparisons are exact (``==``): both engines must perform the
#: same arithmetic on the same values in the same order.  Any epsilon
#: would hide a real ordering divergence.

#: Cap on recorded differences per comparison; the first divergence is
#: the one that matters, the rest are usually its echoes.
MAX_DIFFS = 20

#: The fig10 sweep: every memory-bound mix x every scheduler the
#: figure plots (the paper's headline comparison), which exercises
#: both DRAM controller models' wake/sleep paths, all thread-aware
#: scheduler context callbacks, and every fetch-policy gating regime
#: reachable from the default configuration.
FIG10_SCHEDULERS = (
    "fcfs", "hit-first", "age-based", "request-based", "rob-based",
    "iq-based",
)
FIG10_MIXES = ("2-MIX", "2-MEM", "4-MIX", "4-MEM", "8-MIX", "8-MEM")

def _with_core(config: SystemConfig, **core_overrides: Any) -> SystemConfig:
    return config.with_(
        core=dataclasses.replace(config.core, **core_overrides)
    )


#: Single-config variations appended to the sweep so the oracle also
#: covers the paths fig10 itself does not reach: the command-level
#: controller, close-page mode, RDRAM timing/geometry, interval
#: sampling, the hybrid branch predictor, and every fetch policy.
#: Each entry maps the base config to the varied one.
EXTRA_VARIATIONS: tuple[tuple[str, object], ...] = (
    ("command-controller", lambda c: c.with_(controller_model="command")),
    ("close-page", lambda c: c.with_(page_mode="close")),
    ("rdram", lambda c: c.with_(dram_type="rdram")),
    ("sampling", lambda c: _with_core(c, sample_interval=200)),
    ("branch-pred", lambda c: _with_core(c, branch_predictor=True)),
    ("round-robin", lambda c: c.with_(fetch_policy="round-robin")),
    ("icount", lambda c: c.with_(fetch_policy="icount")),
    ("stall", lambda c: c.with_(fetch_policy="stall")),
    ("dg", lambda c: c.with_(fetch_policy="dg")),
)


@dataclass(frozen=True)
class Tolerance:
    """Per-metric relative-error thresholds for bounded-error mode.

    The defaults encode the sampled engine's accuracy contract: the
    aggregate CPI (total wall cycles over the common instruction
    budget — what fig10 plots) within 2%, and per-thread CPI within a
    looser bound (a single thread's estimate rests on far fewer
    windows than the aggregate).  Per-thread DRAM traffic is NOT
    checked by default: the sampled engine's count is a known
    underestimate in memory-bound mixes — functionally warmed caches
    miss less than contended timed caches (see docs/performance.md) —
    so it is an indicator, not a bounded metric; pass an explicit
    ``dram_accesses`` bound to opt in.
    """

    #: Relative error bound on total wall cycles (aggregate CPI).
    cpi: float = 0.02
    #: Relative error bound on each thread's individual CPI.
    thread_cpi: float = 0.15
    #: Relative error bound on each thread's DRAM access count, or
    #: ``None`` to skip the check (the default — see class docstring).
    dram_accesses: float | None = None

    def __post_init__(self) -> None:
        for name in ("cpi", "thread_cpi", "dram_accesses"):
            value = getattr(self, name)
            if value is None and name == "dram_accesses":
                continue
            if value <= 0:
                raise ConfigError(f"tolerance {name} must be > 0")


@dataclass(frozen=True)
class Divergence:
    """One differing field between the two engines' results."""

    path: str
    reference: object
    fast: object

    def __str__(self) -> str:
        return f"{self.path}: reference={self.reference!r} fast={self.fast!r}"


@dataclass
class ComparisonReport:
    """Outcome of one config compared across engines."""

    label: str
    config: SystemConfig
    apps: tuple[str, ...]
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        if self.identical:
            return f"OK       {self.label}"
        lines = [f"DIVERGED {self.label}"]
        lines.extend(f"    {d}" for d in self.divergences)
        return "\n".join(lines)


def _slot_names(obj: object) -> set[str]:
    """All ``__slots__`` entries across the MRO plus ``__dict__`` keys."""
    names: set[str] = set()
    for klass in type(obj).__mro__:
        names.update(getattr(klass, "__slots__", ()))
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict:
        names.update(instance_dict)
    return names


def diff_values(a: object, b: object, path: str, out: list[Divergence]) -> None:
    """Structural comparison; append one :class:`Divergence` per leaf.

    Walks dataclasses by field, mappings by key, sequences by index,
    and plain objects by ``__slots__``/``__dict__`` attribute; leaves
    compare with ``==``.  Recorded paths use attribute/index syntax
    (``core.threads[3].dram_accesses``) so a divergence can be
    navigated directly in a debugger.
    """
    if len(out) >= MAX_DIFFS:
        return
    if type(a) is not type(b):
        out.append(Divergence(path, type(a).__name__, type(b).__name__))
        return
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        for f in dataclasses.fields(a):
            diff_values(
                getattr(a, f.name), getattr(b, f.name),
                f"{path}.{f.name}", out,
            )
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b), key=repr):
            if key not in a or key not in b:
                out.append(
                    Divergence(
                        f"{path}[{key!r}]",
                        a.get(key, "<absent>"),
                        b.get(key, "<absent>"),
                    )
                )
            else:
                diff_values(a[key], b[key], f"{path}[{key!r}]", out)
        return
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            out.append(Divergence(f"len({path})", len(a), len(b)))
            return
        for i, (x, y) in enumerate(zip(a, b)):
            diff_values(x, y, f"{path}[{i}]", out)
        return
    if isinstance(a, (int, float, str, bytes, bool, frozenset, type(None))):
        if a != b:
            out.append(Divergence(path, a, b))
        return
    names = _slot_names(a)
    if not names:
        if a != b:
            out.append(Divergence(path, a, b))
        return
    for name in sorted(names):
        diff_values(
            getattr(a, name, "<unset>"), getattr(b, name, "<unset>"),
            f"{path}.{name}", out,
        )


def diff_results(
    reference: MixResult, fast: MixResult
) -> list[Divergence]:
    """All field-level differences between two runs' results."""
    out: list[Divergence] = []
    diff_values(reference.core, fast.core, "core", out)
    diff_values(reference.dram, fast.dram, "dram", out)
    diff_values(reference.hierarchy, fast.hierarchy, "hierarchy", out)
    return out


def diff_within_tolerance(
    baseline: MixResult, candidate: MixResult, tolerance: Tolerance
) -> list[Divergence]:
    """Bounded-error comparison of the headline metrics.

    Returns one :class:`Divergence` per metric whose relative error
    exceeds its :class:`Tolerance` threshold; the recorded path names
    the metric and the violated bound.
    """
    out: list[Divergence] = []

    def check(path: str, base: float, cand: float, bound: float) -> None:
        if base == 0 and cand == 0:
            return
        err = abs(cand - base) / abs(base) if base else float("inf")
        if err > bound:
            out.append(
                Divergence(
                    f"{path} (rel err {err:.1%} > {bound:.1%})", base, cand
                )
            )

    check(
        "core.cycles", baseline.core.cycles, candidate.core.cycles,
        tolerance.cpi,
    )
    for bt, ct in zip(baseline.core.threads, candidate.core.threads):
        prefix = f"core.threads[{bt.thread_id}]"
        check(
            f"{prefix}.cpi",
            bt.cycles / max(1, bt.committed),
            ct.cycles / max(1, ct.committed),
            tolerance.thread_cpi,
        )
        if tolerance.dram_accesses is not None:
            check(
                f"{prefix}.dram_accesses",
                bt.dram_accesses,
                ct.dram_accesses,
                tolerance.dram_accesses,
            )
    return out


def compare_engines(
    config: SystemConfig,
    apps: Sequence[str],
    label: str | None = None,
    *,
    baseline: str = "reference",
    candidate: str = "fast",
    tolerance: Tolerance | None = None,
) -> ComparisonReport:
    """Run ``config`` under two engines and diff the results.

    Without ``tolerance`` the comparison is exact (structural,
    field-by-field); with one it is bounded-error over the headline
    metrics — the mode for the sampled engine, whose results are
    estimates.  The two runs are freshly built simulations (no cache
    involvement, see the module docstring); the baseline engine runs
    first so a crash in the candidate engine cannot mask a
    baseline-side failure.
    """
    for name in (baseline, candidate):
        if name not in ENGINE_NAMES:
            raise ConfigError(
                f"unknown engine {name!r}; choose from "
                f"{', '.join(sorted(ENGINE_NAMES))}"
            )
    apps = tuple(apps)
    base_result = run_mix(config.with_(engine=baseline), apps)
    cand_result = run_mix(config.with_(engine=candidate), apps)
    if tolerance is None:
        divergences = diff_results(base_result, cand_result)
    else:
        divergences = diff_within_tolerance(
            base_result, cand_result, tolerance
        )
    return ComparisonReport(
        label=label or _default_label(config, apps),
        config=config,
        apps=apps,
        divergences=divergences,
    )


def _default_label(config: SystemConfig, apps: tuple[str, ...]) -> str:
    return (
        f"{len(apps)} threads, {config.fetch_policy}/{config.scheduler}, "
        f"{config.controller_model} controller"
    )


def fig10_sweep_jobs(
    config: SystemConfig | None = None,
    mixes: Sequence[str] | None = None,
    schedulers: Sequence[str] | None = None,
    include_variations: bool = True,
) -> list[tuple[str, SystemConfig, tuple[str, ...]]]:
    """The ``(label, config, apps)`` jobs of the full oracle sweep.

    ``mixes``/``schedulers`` restrict the cross product (defaults: the
    full figure-10 grid); ``include_variations=False`` drops the extra
    mapping/page-mode/controller variations.  Restriction exists for
    lanes that pay a real reference run per configuration — the
    bounded-error sampled lane — where the full grid would cost hours.
    """
    base = config or SystemConfig()
    jobs: list[tuple[str, SystemConfig, tuple[str, ...]]] = []
    for mix_name in mixes or FIG10_MIXES:
        mix = MIXES[mix_name]
        for scheduler in schedulers or FIG10_SCHEDULERS:
            jobs.append(
                (
                    f"{mix_name} {scheduler}",
                    base.with_(scheduler=scheduler),
                    mix.apps,
                )
            )
    if include_variations:
        variation_mix = MIXES[(mixes or FIG10_MIXES)[-1]]
        for label, vary in EXTRA_VARIATIONS:
            jobs.append(
                (
                    f"{variation_mix.name} {label}",
                    vary(base),
                    variation_mix.apps,
                )
            )
    return jobs


def run_fig10_sweep(
    config: SystemConfig | None = None,
    mixes: Sequence[str] | None = None,
    progress: Callable[[ComparisonReport], None] | None = None,
    fail_fast: bool = False,
    *,
    schedulers: Sequence[str] | None = None,
    include_variations: bool = True,
    baseline: str = "reference",
    candidate: str = "fast",
    tolerance: Tolerance | None = None,
) -> list[ComparisonReport]:
    """Compare engines across the fig10 sweep (see module docstring).

    ``progress`` (optional) is called with each finished
    :class:`ComparisonReport`; with ``fail_fast`` the sweep stops at
    the first divergence — the mode the CI lane uses, since one broken
    config already invalidates the candidate engine.  ``baseline``,
    ``candidate`` and ``tolerance`` select the engines and comparison
    mode as in :func:`compare_engines`; ``mixes``/``schedulers``/
    ``include_variations`` scope the job grid as in
    :func:`fig10_sweep_jobs`.
    """
    reports: list[ComparisonReport] = []
    for label, job_config, apps in fig10_sweep_jobs(
        config, mixes, schedulers, include_variations
    ):
        report = compare_engines(
            job_config, apps, label=label,
            baseline=baseline, candidate=candidate, tolerance=tolerance,
        )
        reports.append(report)
        if progress is not None:
            progress(report)
        if fail_fast and not report.identical:
            break
    return reports


def summarize(reports: Iterable[ComparisonReport]) -> str:
    """One-line verdict over a sweep's reports."""
    reports = list(reports)
    bad = [r for r in reports if not r.identical]
    if not bad:
        return (
            f"engine-diff: {len(reports)} configurations, zero divergence "
            "(fast engine is bit-identical to the reference)"
        )
    return (
        f"engine-diff: {len(bad)} of {len(reports)} configurations "
        "DIVERGED - the fast engine is not trustworthy on this tree"
    )
